//! Cuckoo and simple hashing for PSI binning.
//!
//! The receiver cuckoo-hashes her set into B = ⌈1.27·M⌉ bins using 3 hash
//! functions (at most one element per bin); the sender simple-hashes each of
//! his elements into *all three* of its candidate bins. Then x ∈ Y iff the
//! bin holding x on the receiver side contains x on the sender side —
//! turning set intersection into B independent small-set membership tests.
//!
//! Bin loads on the sender side are padded to a public bound so nothing
//! about the data leaks through hint sizes; if a load ever exceeds the
//! bound (probability < 2^{-σ}), the parties publicly restart with fresh
//! seeds — the standard trick, costing nothing in expectation.

use secyan_crypto::sha256::{digest_to_u64, Sha256};

/// Number of cuckoo hash functions.
pub const NUM_HASHES: usize = 3;

/// Cuckoo expansion factor from the paper's footnote 3: B = 1.27·M bins.
pub fn bin_count(m: usize) -> usize {
    ((m as f64 * 1.27).ceil() as usize).max(1)
}

/// Public upper bound on a simple-hashing bin load when `balls` elements
/// are each thrown into one of `bins` bins by `NUM_HASHES` functions.
///
/// Mean load is μ = 3·balls/bins; a Chernoff tail at e^{-Ω(t²/μ)} makes
/// μ + 6·√(μ·ln bins) + 24 exceed the max load except with probability far
/// below 2^{-40} for every size this workspace touches. Verified
/// empirically in tests; violations trigger a public rehash, not an error.
pub fn max_bin_size(balls: usize, bins: usize) -> usize {
    if bins <= 1 {
        return balls.max(1);
    }
    let mu = (NUM_HASHES * balls) as f64 / bins as f64;
    let slack = 6.0 * (mu * (bins as f64).ln()).sqrt() + 24.0;
    ((mu + slack).ceil() as usize)
        .min(balls * NUM_HASHES)
        .max(1)
}

/// Hash an element to its `idx`-th candidate bin under `seed`.
pub fn bin_of(element: u64, idx: usize, seed: u64, bins: usize) -> usize {
    let mut h = Sha256::new();
    h.update(b"psi-bin");
    h.update(&seed.to_le_bytes());
    h.update(&[idx as u8]);
    h.update(&element.to_le_bytes());
    (digest_to_u64(&h.finalize()) % bins as u64) as usize
}

/// The receiver's cuckoo table: at most one element per bin.
#[derive(Debug, Clone)]
pub struct CuckooTable {
    /// `Some(element)` or empty.
    pub bins: Vec<Option<u64>>,
    /// The public hash seed that produced a successful placement.
    pub seed: u64,
}

impl CuckooTable {
    /// Place `elements` (distinct) into `bins` bins, retrying with
    /// incremented seeds on (rare) failure. `seed0` is the first seed tried
    /// and travels to the other party so both sides agree on the bins.
    pub fn build(elements: &[u64], bins: usize, seed0: u64) -> CuckooTable {
        assert!(bins >= elements.len(), "need at least one bin per element");
        let mut seed = seed0;
        loop {
            // ct-ok: the cuckoo hash seed is public — it is sent to the
            // other party so both sides derive the same bin mapping.
            if let Some(t) = Self::try_build(elements, bins, seed) {
                return t;
            }
            seed = seed.wrapping_add(1);
        }
    }

    fn try_build(elements: &[u64], bins: usize, seed: u64) -> Option<CuckooTable> {
        let mut table: Vec<Option<u64>> = vec![None; bins];
        // Random-walk insertion with an eviction budget.
        let budget = 64 + 8 * usize::BITS as usize;
        for &e in elements {
            let mut cur = e;
            let mut hash_idx = 0usize;
            let mut steps = 0;
            loop {
                let b = bin_of(cur, hash_idx, seed, bins);
                match table[b] {
                    None => {
                        table[b] = Some(cur);
                        break;
                    }
                    Some(occupant) => {
                        table[b] = Some(cur);
                        cur = occupant;
                        // Kick the occupant to the candidate bin after the
                        // one it occupied (deterministic rotation keeps the
                        // walk reproducible across retries).
                        let occ_idx = (0..NUM_HASHES)
                            // ct-ok: same public cuckoo seed; bin placement
                            // is revealed to both parties by construction.
                            .find(|&i| bin_of(occupant, i, seed, bins) == b)
                            .expect("occupant was placed in a candidate bin");
                        hash_idx = (occ_idx + 1) % NUM_HASHES;
                        steps += 1;
                        if steps > budget {
                            return None;
                        }
                    }
                }
            }
        }
        Some(CuckooTable { bins: table, seed })
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if the table has no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }
}

/// The sender's simple-hashing table: every element appears in each of its
/// candidate bins (deduplicated within a bin).
#[derive(Debug, Clone)]
pub struct SimpleTable {
    pub bins: Vec<Vec<u64>>,
    pub seed: u64,
}

impl SimpleTable {
    /// Hash `elements` into `bins` bins under `seed` (the seed received
    /// from the cuckoo side).
    pub fn build(elements: &[u64], bins: usize, seed: u64) -> SimpleTable {
        let mut table: Vec<Vec<u64>> = vec![Vec::new(); bins];
        for &e in elements {
            let mut seen = [usize::MAX; NUM_HASHES];
            for idx in 0..NUM_HASHES {
                let b = bin_of(e, idx, seed, bins);
                if !seen[..idx].contains(&b) {
                    table[b].push(e);
                }
                seen[idx] = b;
            }
        }
        SimpleTable { bins: table, seed }
    }

    /// The largest actual bin load.
    pub fn max_load(&self) -> usize {
        self.bins.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn cuckoo_places_every_element_once() {
        let mut rng = StdRng::seed_from_u64(1);
        for m in [1usize, 5, 50, 400] {
            let elements: HashSet<u64> = (0..).map(|_| rng.gen()).take(m).collect();
            let elements: Vec<u64> = elements.into_iter().collect();
            let bins = bin_count(elements.len());
            let t = CuckooTable::build(&elements, bins, 7);
            let placed: Vec<u64> = t.bins.iter().flatten().copied().collect();
            assert_eq!(placed.len(), elements.len(), "m={m}");
            let placed_set: HashSet<u64> = placed.iter().copied().collect();
            assert_eq!(placed_set.len(), elements.len());
            // Every element sits in one of its candidate bins.
            for (b, slot) in t.bins.iter().enumerate() {
                if let Some(e) = slot {
                    let candidates: Vec<usize> = (0..NUM_HASHES)
                        .map(|i| bin_of(*e, i, t.seed, bins))
                        .collect();
                    assert!(candidates.contains(&b), "element {e} in wrong bin");
                }
            }
        }
    }

    #[test]
    fn simple_table_contains_matching_bins() {
        // The PSI invariant: if x is cuckoo-placed in bin b, then x appears
        // in the sender's bin b whenever x ∈ Y.
        let mut rng = StdRng::seed_from_u64(2);
        let shared: Vec<u64> = (0..100).map(|_| rng.gen()).collect();
        let x: Vec<u64> = shared.iter().copied().take(60).collect();
        let y: Vec<u64> = shared.iter().copied().skip(30).collect();
        let bins = bin_count(x.len());
        let cuckoo = CuckooTable::build(&x, bins, 3);
        let simple = SimpleTable::build(&y, bins, cuckoo.seed);
        for (b, slot) in cuckoo.bins.iter().enumerate() {
            if let Some(e) = slot {
                if y.contains(e) {
                    assert!(simple.bins[b].contains(e), "bin {b}");
                }
            }
        }
    }

    #[test]
    fn max_bin_size_holds_empirically() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [10usize, 100, 1000] {
            let bins = bin_count(n);
            let bound = max_bin_size(n, bins);
            for trial in 0..20 {
                let y: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
                let t = SimpleTable::build(&y, bins, trial);
                assert!(
                    t.max_load() <= bound,
                    "n={n} bound={bound} load={}",
                    t.max_load()
                );
            }
        }
    }

    #[test]
    fn bin_count_matches_paper_factor() {
        assert_eq!(bin_count(100), 127);
        assert_eq!(bin_count(0), 1);
        assert_eq!(bin_count(1), 2);
    }

    #[test]
    fn simple_hash_dedups_within_bin() {
        // An element whose candidate bins collide appears only once there.
        for seed in 0..50u64 {
            let t = SimpleTable::build(&[42], 2, seed);
            for bin in &t.bins {
                assert!(bin.len() <= 1);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    // The offline `proptest` stand-in expands property bodies to nothing,
    // which orphans these imports; the real crate uses them.
    #![allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Cuckoo placement always succeeds (possibly after reseeding) and
        /// places every element exactly once in one of its candidate bins.
        #[test]
        fn prop_cuckoo_places_all(elements in proptest::collection::hash_set(any::<u64>(), 1..200)) {
            let elements: Vec<u64> = elements.into_iter().collect();
            let bins = bin_count(elements.len());
            let t = CuckooTable::build(&elements, bins, 0);
            let placed: HashSet<u64> = t.bins.iter().flatten().copied().collect();
            prop_assert_eq!(placed.len(), elements.len());
            for (b, slot) in t.bins.iter().enumerate() {
                if let Some(e) = slot {
                    let ok = (0..NUM_HASHES).any(|i| bin_of(*e, i, t.seed, bins) == b);
                    prop_assert!(ok, "element {} strayed from its candidate bins", e);
                }
            }
        }

        /// The PSI invariant under simple hashing: a shared element is
        /// always found in the bin where cuckoo placed it.
        #[test]
        fn prop_matching_bins(shared in proptest::collection::hash_set(any::<u64>(), 1..100), seed: u64) {
            let x: Vec<u64> = shared.iter().copied().collect();
            let bins = bin_count(x.len());
            let cuckoo = CuckooTable::build(&x, bins, seed);
            let simple = SimpleTable::build(&x, bins, cuckoo.seed);
            for (b, slot) in cuckoo.bins.iter().enumerate() {
                if let Some(e) = slot {
                    prop_assert!(simple.bins[b].contains(e));
                }
            }
        }
    }
}
