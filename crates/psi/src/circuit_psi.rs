//! Circuit PSI with payloads (paper §5.3).
//!
//! Roles (independent of transport roles): the **receiver** holds the set X
//! being cuckoo-hashed and evaluates the garbled circuit; the **sender**
//! holds the set Y with one payload per element and garbles. For each bin b
//! of the receiver's cuckoo table, both parties obtain additive shares of
//!
//! * `Ind(x_b ∈ Y)` (as a 0/1 ring element), and
//! * the payload of the matching y (or 0 when there is no match),
//!
//! and nothing else — the intersection itself stays hidden, which is what
//! lets the paper chain PSI into semijoins (§6.2).
//!
//! Sender elements must be distinct: the Yannakakis reduce phase guarantees
//! this by aggregating before every semijoin.

use rand::Rng;
use secyan_circuit::{u64_to_bits, Circuit};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_gc::{
    evaluate_shared_begin, evaluate_shared_finish, garble_shared, garble_shared_online, take_eval,
    take_garble, with_shared_outputs, EvalMaterial, EvalPending, GarbleMaterial, SharedOutputSpec,
};
use secyan_ot::{KkrtReceiver, KkrtSender, KkrtSenderKey, OtReceiver, OtSender};
use secyan_transport::{Channel, ReadExt, WriteExt};
use std::collections::{HashMap, VecDeque};

use crate::hashing::{bin_count, max_bin_size, CuckooTable, SimpleTable};
use crate::opprf::{
    opprf_evaluate_begin, opprf_evaluate_finish, opprf_program_with_key, OpprfEval, PsiItem,
};

/// Per-party result of a circuit PSI: one entry per cuckoo bin.
#[derive(Debug, Clone)]
pub struct PsiOutput {
    /// The receiver's cuckoo table (receiver side only) — needed to map
    /// bins back to elements downstream.
    pub cuckoo: Option<CuckooTable>,
    /// Shares of Ind(x_b ∈ Y) per bin.
    pub ind_shares: Vec<u64>,
    /// Shares of the matched payload (0 on no match) per bin.
    pub payload_shares: Vec<u64>,
}

/// The public parameters both parties derive identically. Public so the
/// offline planner (`secyan-core`'s query shapes) can reproduce the bin
/// and degree bounds from the public relation sizes alone.
pub struct PsiParams {
    pub bins: usize,
    pub degree: usize,
}

/// Derive the cuckoo/simple-hash parameters from the two public set sizes.
pub fn psi_params(receiver_size: usize, sender_size: usize) -> PsiParams {
    let bins = bin_count(receiver_size);
    PsiParams {
        bins,
        degree: max_bin_size(sender_size, bins),
    }
}

/// The per-bin matching circuit: shares of indicator and payload. Public
/// so the offline planner can pre-garble it — its dimensions depend only
/// on the public bin count and ring width.
pub fn matching_circuit(bins: usize, ell: usize) -> (Circuit, SharedOutputSpec) {
    let spec = SharedOutputSpec::uniform(2 * bins, ell);
    let circuit = with_shared_outputs(&spec, |b| {
        // Garbler (sender): s_b then w_b per bin; evaluator: o_b then p_b.
        let sw: Vec<_> = (0..bins)
            .map(|_| (b.alice_word(64), b.alice_word(64)))
            .collect();
        let op: Vec<_> = (0..bins)
            .map(|_| (b.bob_word(64), b.bob_word(64)))
            .collect();
        let mut words = Vec::with_capacity(2 * bins);
        for ((s, w), (o, p)) in sw.iter().zip(&op) {
            let ind = b.eq_words(o, s);
            let z64 = b.xor_words(p, w);
            let z = b.resize_word(&z64, ell);
            let val = b.and_word_bit(&z, ind);
            let mut ind_bits = vec![b.constant(false); ell];
            ind_bits[0] = ind;
            words.push(secyan_circuit::Word(ind_bits));
            words.push(val);
        }
        words
    });
    (circuit, spec)
}

/// Split the interleaved `[ind, val, ind, val, ...]` share list.
fn split_shares(shares: Vec<u64>) -> (Vec<u64>, Vec<u64>) {
    let mut ind = Vec::with_capacity(shares.len() / 2);
    let mut val = Vec::with_capacity(shares.len() / 2);
    for pair in shares.chunks_exact(2) {
        ind.push(pair[0]);
        val.push(pair[1]);
    }
    (ind, val)
}

/// Agree on a cuckoo/simple-hash seed whose bin loads respect the public
/// bound, *optimistically* overlapping the two KKRT batches with the
/// verdict: each attempt stages the seed **and** both OPPRF correction
/// batches before blocking on the sender's verdict, so an accepted first
/// attempt (the overwhelmingly common case) costs zero extra ping-pongs.
/// A rejected attempt discards the two in-flight evaluations — both
/// parties burn the same 2·bins banked KKRT instances, so bank budgets
/// stay mirrored; if the bank runs dry the batches transparently fall back
/// to fresh (still receiver-send-only) extensions. The retry count was
/// already public under the old send/verdict loop.
///
/// Receiver side; returns the table, its per-bin queries, and the two
/// pending OPPRF evaluations (membership first, payload second).
pub(crate) fn negotiate_cuckoo(
    ch: &mut Channel,
    elements: &[u64],
    params: &PsiParams,
    kkrt: &mut KkrtReceiver,
) -> (CuckooTable, Vec<PsiItem>, OpprfEval, OpprfEval) {
    let mut seed = 0u64;
    loop {
        let table = CuckooTable::build(elements, params.bins, seed);
        // taint-ok: adaptive retry — each seed attempt needs the peer's
        // verdict; the fast path already stages everything before blocking.
        ch.send_u64(table.seed);
        let queries: Vec<PsiItem> = table
            .bins
            .iter()
            .enumerate()
            .map(|(b, slot)| match slot {
                Some(e) => PsiItem::Real(*e),
                None => PsiItem::Dummy(b as u64),
            })
            .collect();
        let e1 = opprf_evaluate_begin(ch, kkrt, &queries, params.degree);
        let e2 = opprf_evaluate_begin(ch, kkrt, &queries, params.degree);
        if ch.recv_u64() == 1 {
            return (table, queries, e1, e2);
        }
        seed = table.seed.wrapping_add(1);
    }
}

/// Sender side of the optimistic negotiation; consumes the receiver's
/// in-flight correction batches (in FIFO order, after the verdict is
/// staged) whether or not the seed is accepted, keeping the KKRT streams
/// of both parties aligned. Returns the simple-hash table and the two
/// evaluation keys (membership first, payload second).
pub(crate) fn negotiate_simple(
    ch: &mut Channel,
    elements: &[u64],
    params: &PsiParams,
    kkrt: &mut KkrtSender,
) -> (SimpleTable, KkrtSenderKey, KkrtSenderKey) {
    loop {
        let seed = ch.recv_u64();
        let table = SimpleTable::build(elements, params.bins, seed);
        let ok = table.max_load() <= params.degree;
        // taint-ok: adaptive retry — the verdict answers the seed just
        // received; see negotiate_cuckoo for the round accounting.
        ch.send_u64(ok as u64);
        let k1 = kkrt.key_batch(ch, params.bins);
        let k2 = kkrt.key_batch(ch, params.bins);
        if ok {
            return (table, k1, k2);
        }
    }
}

/// Receiver-side in-flight PSI state between [`psi_receiver_begin`] and
/// [`psi_receiver_finish`]: everything up to (and including) staging the
/// matching circuit's OT corrections has happened; the cuckoo table is
/// already known, so a caller can derive downstream routings from it and
/// stage their corrections into the same outbound super-frame.
pub struct PsiReceiverPending {
    cuckoo: CuckooTable,
    circuit: Circuit,
    spec: SharedOutputSpec,
    my_bits: Vec<bool>,
    gc: EvalPending,
}

impl PsiReceiverPending {
    /// The receiver's cuckoo table — available before the PSI completes,
    /// so downstream per-bin routings can be staged early.
    pub fn cuckoo(&self) -> &CuckooTable {
        &self.cuckoo
    }
}

/// First half of the circuit-PSI receiver: negotiate the cuckoo seed,
/// finish the two OPPRF evaluations, and stage (send-only) the matching
/// circuit's OT corrections. Returns with the outbound super-frame still
/// open: everything this side must *send* for the PSI has been staged, so
/// the caller can stage further dependency-free messages (e.g. the OSN
/// corrections of a cuckoo-derived OEP) before [`psi_receiver_finish`]
/// blocks on the garbler's labels.
#[allow(clippy::too_many_arguments)]
pub fn psi_receiver_begin(
    ch: &mut Channel,
    elements: &[u64],
    sender_size: usize,
    ring: RingCtx,
    kkrt: &mut KkrtReceiver,
    ot: &mut OtReceiver,
    gc_bank: &mut VecDeque<EvalMaterial>,
) -> PsiReceiverPending {
    let params = psi_params(elements.len(), sender_size);
    let (cuckoo, _queries, e1, e2) = negotiate_cuckoo(ch, elements, &params, kkrt);
    let o = opprf_evaluate_finish(ch, e1);
    let p = opprf_evaluate_finish(ch, e2);
    // The matching circuit: this party evaluates.
    let (circuit, spec) = matching_circuit(params.bins, ring.bits() as usize);
    let mut my_bits = Vec::with_capacity(params.bins * 128);
    for b in 0..params.bins {
        my_bits.extend(u64_to_bits(o[b], 64));
        my_bits.extend(u64_to_bits(p[b], 64));
    }
    let material = take_eval(gc_bank, &circuit);
    let gc = evaluate_shared_begin(ch, &circuit, material, &my_bits, ot);
    PsiReceiverPending {
        cuckoo,
        circuit,
        spec,
        my_bits,
        gc,
    }
}

/// Second half of the circuit-PSI receiver: receive and evaluate the
/// matching circuit. Receive-only.
pub fn psi_receiver_finish(
    ch: &mut Channel,
    pending: PsiReceiverPending,
    ot: &mut OtReceiver,
    hasher: TweakHasher,
) -> PsiOutput {
    let PsiReceiverPending {
        cuckoo,
        circuit,
        spec,
        my_bits,
        gc,
    } = pending;
    let shares = evaluate_shared_finish(ch, &circuit, gc, &spec, &my_bits, ot, hasher);
    let (ind_shares, payload_shares) = split_shares(shares);
    PsiOutput {
        cuckoo: Some(cuckoo),
        ind_shares,
        payload_shares,
    }
}

/// Receiver (cuckoo) side of circuit PSI. `elements` must be distinct;
/// `sender_size` is the public size of the sender's set. `gc_bank` holds
/// pre-received garbled tables in plan order (pass an empty deque for a
/// single-phase run): when its front matches the matching circuit the
/// evaluation consumes it, else the tables travel inline. Implemented as
/// [`psi_receiver_begin`] + [`psi_receiver_finish`].
#[allow(clippy::too_many_arguments)]
pub fn psi_receiver(
    ch: &mut Channel,
    elements: &[u64],
    sender_size: usize,
    ring: RingCtx,
    kkrt: &mut KkrtReceiver,
    ot: &mut OtReceiver,
    hasher: TweakHasher,
    gc_bank: &mut VecDeque<EvalMaterial>,
) -> PsiOutput {
    let pending = psi_receiver_begin(ch, elements, sender_size, ring, kkrt, ot, gc_bank);
    psi_receiver_finish(ch, pending, ot, hasher)
}

/// Sender side of circuit PSI. `items` are distinct `(element, payload)`
/// pairs with payloads already reduced into `ring`; `receiver_size` is the
/// public size of the receiver's set. `gc_bank` mirrors the receiver's:
/// pre-garbled material in plan order, consumed when its front matches.
#[allow(clippy::too_many_arguments)]
pub fn psi_sender<R: Rng + ?Sized>(
    ch: &mut Channel,
    items: &[(u64, u64)],
    receiver_size: usize,
    ring: RingCtx,
    kkrt: &mut KkrtSender,
    ot: &mut OtSender,
    hasher: TweakHasher,
    rng: &mut R,
    gc_bank: &mut VecDeque<GarbleMaterial>,
) -> PsiOutput {
    let params = psi_params(receiver_size, items.len());
    let payload_of: HashMap<u64, u64> = items.iter().copied().collect();
    assert_eq!(
        payload_of.len(),
        items.len(),
        "sender elements must be distinct"
    );
    let elements: Vec<u64> = items.iter().map(|&(e, _)| e).collect();
    let (simple, k1, k2) = negotiate_simple(ch, &elements, &params, kkrt);
    // Membership OPPRF: every element of bin b targets the same random s_b.
    let s: Vec<u64> = (0..params.bins).map(|_| rng.gen()).collect();
    let member_prog: Vec<Vec<(u64, u64)>> = simple
        .bins
        .iter()
        .enumerate()
        .map(|(b, ys)| ys.iter().map(|&y| (y, s[b])).collect())
        .collect();
    opprf_program_with_key(ch, k1, &member_prog, params.degree, rng);
    // Payload OPPRF: element y targets payload(y) ⊕ w_b.
    let w: Vec<u64> = (0..params.bins).map(|_| rng.gen()).collect();
    let payload_prog: Vec<Vec<(u64, u64)>> = simple
        .bins
        .iter()
        .enumerate()
        .map(|(b, ys)| ys.iter().map(|&y| (y, payload_of[&y] ^ w[b])).collect())
        .collect();
    opprf_program_with_key(ch, k2, &payload_prog, params.degree, rng);
    // The matching circuit: this party garbles.
    let (circuit, spec) = matching_circuit(params.bins, ring.bits() as usize);
    let mut my_bits = Vec::with_capacity(params.bins * 128);
    for b in 0..params.bins {
        my_bits.extend(u64_to_bits(s[b], 64));
        my_bits.extend(u64_to_bits(w[b], 64));
    }
    let shares = match take_garble(gc_bank, &circuit) {
        Some(m) => garble_shared_online(ch, &circuit, m, &spec, &my_bits, ot, rng),
        None => garble_shared(ch, &circuit, &spec, &my_bits, ot, hasher, rng),
    };
    let (ind_shares, payload_shares) = split_shares(shares);
    PsiOutput {
        cuckoo: None,
        ind_shares,
        payload_shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::run_protocol;

    fn run_psi(x: Vec<u64>, y: Vec<(u64, u64)>) -> (PsiOutput, PsiOutput, RingCtx) {
        // One hasher choice drives OT, OPRF, and garbling on both sides.
        let hasher = TweakHasher::default();
        let ring = RingCtx::new(32);
        let x_len = x.len();
        let y_len = y.len();
        let (r, s, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(21);
                let mut kkrt = KkrtReceiver::setup(ch, &mut rng, hasher);
                let mut ot = OtReceiver::setup(ch, &mut rng, hasher);
                psi_receiver(
                    ch,
                    &x,
                    y_len,
                    ring,
                    &mut kkrt,
                    &mut ot,
                    hasher,
                    &mut VecDeque::new(),
                )
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(22);
                let mut kkrt = KkrtSender::setup(ch, &mut rng, hasher);
                let mut ot = OtSender::setup(ch, &mut rng, hasher);
                psi_sender(
                    ch,
                    &y,
                    x_len,
                    ring,
                    &mut kkrt,
                    &mut ot,
                    hasher,
                    &mut rng,
                    &mut VecDeque::new(),
                )
            },
        );
        (r, s, ring)
    }

    #[test]
    fn intersection_and_payloads_reconstruct() {
        let x = vec![1u64, 2, 3, 4, 5];
        let y = vec![(2u64, 200u64), (4, 400), (6, 600)];
        let (r, s, ring) = run_psi(x, y);
        let cuckoo = r.cuckoo.as_ref().unwrap();
        let ind = ring.reconstruct_vec(&r.ind_shares, &s.ind_shares);
        let val = ring.reconstruct_vec(&r.payload_shares, &s.payload_shares);
        for (b, slot) in cuckoo.bins.iter().enumerate() {
            match slot {
                Some(e) if [2, 4].contains(e) => {
                    assert_eq!(ind[b], 1, "element {e}");
                    assert_eq!(val[b], e * 100);
                }
                _ => {
                    assert_eq!(ind[b], 0, "bin {b} slot {slot:?}");
                    assert_eq!(val[b], 0);
                }
            }
        }
    }

    #[test]
    fn disjoint_sets_yield_all_zero() {
        let (r, s, ring) = run_psi(vec![1, 2, 3], vec![(7, 70), (8, 80)]);
        let ind = ring.reconstruct_vec(&r.ind_shares, &s.ind_shares);
        let val = ring.reconstruct_vec(&r.payload_shares, &s.payload_shares);
        assert!(ind.iter().all(|&v| v == 0));
        assert!(val.iter().all(|&v| v == 0));
    }

    #[test]
    fn full_overlap() {
        let x = vec![10u64, 11, 12];
        let y: Vec<(u64, u64)> = x.iter().map(|&e| (e, e + 1000)).collect();
        let (r, s, ring) = run_psi(x.clone(), y);
        let cuckoo = r.cuckoo.as_ref().unwrap();
        let ind = ring.reconstruct_vec(&r.ind_shares, &s.ind_shares);
        let val = ring.reconstruct_vec(&r.payload_shares, &s.payload_shares);
        let matched: usize = ind.iter().map(|&v| v as usize).sum();
        assert_eq!(matched, 3);
        for (b, slot) in cuckoo.bins.iter().enumerate() {
            if let Some(e) = slot {
                assert_eq!(val[b], e + 1000);
            }
        }
    }

    #[test]
    fn shares_alone_look_uninformative() {
        // Neither share vector should equal the cleartext indicators.
        let (r, s, ring) = run_psi(vec![1, 2], vec![(1, 10), (2, 20)]);
        let ind = ring.reconstruct_vec(&r.ind_shares, &s.ind_shares);
        assert_ne!(r.ind_shares, ind);
        assert_ne!(s.ind_shares, ind);
    }
}
