//! Circuit-based private set intersection with payloads (paper §5.3, §5.5).
//!
//! The PSI flavour the secure Yannakakis protocol needs is unusual: the
//! intersection must *not* be revealed. Instead, for each bin of the
//! receiver's cuckoo table the parties end with secret shares of
//! `Ind(x_b ∈ Y)` and of the matching payload (or 0). This follows Pinkas
//! et al.'s circuit-PSI blueprint, which the paper adopted for exactly this
//! "circuit-friendliness".
//!
//! Layers:
//! * [`hashing`] — cuckoo hashing on the receiver side (3 hash functions,
//!   B = ⌈1.27·M⌉ bins, per the paper's footnote), simple hashing on the
//!   sender side, and the public bin-size bound that keeps padding
//!   oblivious.
//! * [`opprf`] — oblivious *programmable* PRF: KKRT OPRF plus per-bin
//!   polynomial hints over GF(2^64).
//! * [`circuit_psi`] — the §5.3 protocol: membership + payload OPPRFs and
//!   one garbled circuit turning OPPRF outputs into shares of indicator and
//!   payload.
//! * [`shared_payload`] — the §5.5 protocol for payloads that are
//!   themselves secret-shared, built from two OEPs and a k-index-revealing
//!   garbled circuit, exactly as the paper constructs it.

pub mod circuit_psi;
pub mod hashing;
pub mod opprf;
pub mod shared_payload;

pub use circuit_psi::{
    matching_circuit, psi_params, psi_receiver, psi_receiver_begin, psi_receiver_finish,
    psi_sender, PsiOutput, PsiParams, PsiReceiverPending,
};
pub use hashing::{bin_count, max_bin_size, CuckooTable, SimpleTable};
pub use opprf::{
    opprf_evaluate, opprf_evaluate_begin, opprf_evaluate_finish, opprf_program,
    opprf_program_with_key, OpprfEval, PsiItem,
};
pub use shared_payload::{
    k_circuit, shared_payload_psi_receiver, shared_payload_psi_receiver_begin,
    shared_payload_psi_receiver_finish, shared_payload_psi_sender, SharedPayloadPending,
};
