//! PSI with **secret-shared** payloads (paper §5.5).
//!
//! In the middle of a query plan the payloads (annotations) no longer
//! belong to either party — they exist only as additive shares. The paper's
//! construction, reproduced here exactly:
//!
//! 1. extend the N payload shares to N+B with zeros (locally);
//! 2. the sender draws a random permutation ξ₁ of [N+B]; one **shared OEP**
//!    re-randomizes and permutes the shares to z'_j = z_{ξ₁(j)};
//! 3. run the OPPRFs of circuit PSI, but the programmed payload of y_j is
//!    the *index* ξ₁⁻¹(j);
//! 4. a garbled circuit reveals, per bin b, k_b = ξ₁⁻¹(j) on a match and
//!    k_b = ξ₁⁻¹(N+b) otherwise — a uniformly random set of distinct
//!    indices either way, so the receiver learns nothing — plus shares of
//!    the indicator;
//! 5. the receiver uses ξ₂(b) = k_b in a second **shared OEP**, landing the
//!    parties on fresh shares of the matched payload (or of the zero
//!    padding).

use rand::seq::SliceRandom;
use rand::Rng;
use secyan_circuit::{bits_to_u64, u64_to_bits, Builder, Circuit, Word};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_gc::{
    evaluate_circuit, evaluate_online, garble_circuit, garble_online, take_eval, take_garble,
    EvalMaterial, GarbleMaterial, OutputMode,
};
use secyan_oep::{
    shared_oep_other, shared_oep_perm_holder, shared_oep_perm_holder_begin,
    shared_oep_perm_holder_finish, OepPending,
};
use secyan_ot::{KkrtReceiver, KkrtSender, OtReceiver, OtSender};
use secyan_transport::Channel;
use std::collections::{HashMap, VecDeque};

use crate::circuit_psi::{negotiate_cuckoo, negotiate_simple, psi_params, PsiOutput};
use crate::hashing::CuckooTable;
use crate::opprf::{opprf_evaluate_finish, opprf_program_with_key};

/// The k-index circuit: per bin, shares of the indicator plus the routing
/// index k_b in the clear (toward the evaluator = PSI receiver). Public so
/// the offline planner can pre-garble it from the public bin count.
pub fn k_circuit(bins: usize, ell: usize) -> Circuit {
    let mut b = Builder::new();
    // Garbler (= PSI sender): per-bin indicator masks, then s, w, d.
    let masks: Vec<Word> = (0..bins).map(|_| b.alice_word(ell)).collect();
    let swd: Vec<(Word, Word, Word)> = (0..bins)
        .map(|_| (b.alice_word(64), b.alice_word(64), b.alice_word(64)))
        .collect();
    // Evaluator (= PSI receiver): per-bin o, p.
    let op: Vec<(Word, Word)> = (0..bins)
        .map(|_| (b.bob_word(64), b.bob_word(64)))
        .collect();
    let mut masked_inds = Vec::with_capacity(bins);
    let mut ks = Vec::with_capacity(bins);
    for (((s, w, d), (o, p)), mask) in swd.iter().zip(&op).zip(&masks) {
        let ind = b.eq_words(o, s);
        let mut ind_bits = vec![b.constant(false); ell];
        ind_bits[0] = ind;
        let ind_word = Word(ind_bits);
        masked_inds.push(b.add_words(&ind_word, mask));
        let unmasked = b.xor_words(p, w);
        ks.push(b.mux_words(ind, &unmasked, d));
    }
    for m in &masked_inds {
        b.output_word(m);
    }
    for k in &ks {
        b.output_word(k);
    }
    b.finish()
}

/// Receiver-side in-flight state between [`shared_payload_psi_receiver_begin`]
/// and [`shared_payload_psi_receiver_finish`]: everything up to staging the
/// ξ₂-OEP's OT corrections has happened, and the cuckoo table is known.
pub struct SharedPayloadPending {
    cuckoo: CuckooTable,
    ind_shares: Vec<u64>,
    zprime_shares: Vec<u64>,
    oep: OepPending,
}

impl SharedPayloadPending {
    /// The receiver's cuckoo table — available before the PSI completes,
    /// so downstream per-bin routings can be staged early.
    pub fn cuckoo(&self) -> &CuckooTable {
        &self.cuckoo
    }
}

/// First half of the shared-payload PSI receiver: steps 1–4 in full (the
/// first shared OEP, binning, OPPRFs, the k circuit) and the send-only
/// part of step 5 — the ξ₂-OEP's OT corrections are staged but the masked
/// values are not yet received. The caller can stage further
/// dependency-free messages into the same outbound super-frame before
/// [`shared_payload_psi_receiver_finish`] blocks.
#[allow(clippy::too_many_arguments)]
pub fn shared_payload_psi_receiver_begin<R: Rng + ?Sized>(
    ch: &mut Channel,
    elements: &[u64],
    my_payload_shares: &[u64],
    ring: RingCtx,
    kkrt: &mut KkrtReceiver,
    ot_recv: &mut OtReceiver,
    ot_send: &mut OtSender,
    hasher: TweakHasher,
    rng: &mut R,
    gc_bank: &mut VecDeque<EvalMaterial>,
) -> SharedPayloadPending {
    let n = my_payload_shares.len();
    let params = psi_params(elements.len(), n);
    let bins = params.bins;
    // Step 1–2: extend shares with B zeros; shared OEP under the sender's ξ₁.
    let mut ext = my_payload_shares.to_vec();
    ext.resize(n + bins, 0);
    let zprime_shares = shared_oep_other(ch, &ext, n + bins, ring, ot_send, rng);
    // Step 3: binning + OPPRFs (corrections staged with the seed, see
    // `negotiate_cuckoo`).
    let (cuckoo, _queries, e1, e2) = negotiate_cuckoo(ch, elements, &params, kkrt);
    let o = opprf_evaluate_finish(ch, e1);
    let p = opprf_evaluate_finish(ch, e2);
    // Step 4: evaluate the k circuit.
    let circuit = k_circuit(bins, ring.bits() as usize);
    let mut my_bits = Vec::with_capacity(bins * 128);
    for b in 0..bins {
        my_bits.extend(u64_to_bits(o[b], 64));
        my_bits.extend(u64_to_bits(p[b], 64));
    }
    let out_bits = match take_eval(gc_bank, &circuit) {
        Some(m) => evaluate_online(
            ch,
            &circuit,
            m,
            &my_bits,
            ot_recv,
            hasher,
            OutputMode::RevealToEvaluator,
        ),
        None => evaluate_circuit(
            ch,
            &circuit,
            &my_bits,
            ot_recv,
            hasher,
            OutputMode::RevealToEvaluator,
        ),
    }
    .expect("k circuit reveals to evaluator");
    let ell = ring.bits() as usize;
    let ind_shares: Vec<u64> = (0..bins)
        .map(|b| bits_to_u64(&out_bits[b * ell..(b + 1) * ell]))
        .collect();
    let k_base = bins * ell;
    let ks: Vec<usize> = (0..bins)
        .map(|b| bits_to_u64(&out_bits[k_base + b * 64..k_base + (b + 1) * 64]) as usize)
        .collect();
    for &k in &ks {
        assert!(k < n + bins, "k index out of range: corrupted transcript");
    }
    // Step 5 (send half): stage the ξ₂-OEP corrections with ξ₂ = k.
    let oep = shared_oep_perm_holder_begin(ch, &ks, n + bins, ot_recv);
    SharedPayloadPending {
        cuckoo,
        ind_shares,
        zprime_shares,
        oep,
    }
}

/// Second half of the shared-payload PSI receiver: finish the ξ₂-OEP walk.
/// Receive-only.
pub fn shared_payload_psi_receiver_finish(
    ch: &mut Channel,
    pending: SharedPayloadPending,
    ring: RingCtx,
    ot_recv: &mut OtReceiver,
) -> PsiOutput {
    let SharedPayloadPending {
        cuckoo,
        ind_shares,
        zprime_shares,
        oep,
    } = pending;
    let payload_shares = shared_oep_perm_holder_finish(ch, oep, &zprime_shares, ring, ot_recv);
    PsiOutput {
        cuckoo: Some(cuckoo),
        ind_shares,
        payload_shares,
    }
}

/// Receiver side (the cuckoo/X holder; also holds shares of the sender's
/// payload vector). `my_payload_shares.len()` is the sender's public set
/// size. Returns per-bin shares of indicator and payload. `gc_bank` holds
/// pre-received tables in plan order (empty deque for single-phase runs).
/// Implemented as [`shared_payload_psi_receiver_begin`] +
/// [`shared_payload_psi_receiver_finish`].
#[allow(clippy::too_many_arguments)]
pub fn shared_payload_psi_receiver<R: Rng + ?Sized>(
    ch: &mut Channel,
    elements: &[u64],
    my_payload_shares: &[u64],
    ring: RingCtx,
    kkrt: &mut KkrtReceiver,
    ot_recv: &mut OtReceiver,
    ot_send: &mut OtSender,
    hasher: TweakHasher,
    rng: &mut R,
    gc_bank: &mut VecDeque<EvalMaterial>,
) -> PsiOutput {
    let pending = shared_payload_psi_receiver_begin(
        ch,
        elements,
        my_payload_shares,
        ring,
        kkrt,
        ot_recv,
        ot_send,
        hasher,
        rng,
        gc_bank,
    );
    shared_payload_psi_receiver_finish(ch, pending, ring, ot_recv)
}

/// Sender side (the Y holder; also holds shares of their own payload
/// vector, aligned by index with `elements`). `receiver_size` is public.
/// `gc_bank` mirrors the receiver's: pre-garbled material in plan order.
#[allow(clippy::too_many_arguments)]
pub fn shared_payload_psi_sender<R: Rng + ?Sized>(
    ch: &mut Channel,
    elements: &[u64],
    receiver_size: usize,
    my_payload_shares: &[u64],
    ring: RingCtx,
    kkrt: &mut KkrtSender,
    ot_send: &mut OtSender,
    ot_recv: &mut OtReceiver,
    hasher: TweakHasher,
    rng: &mut R,
    gc_bank: &mut VecDeque<GarbleMaterial>,
) -> PsiOutput {
    let n = elements.len();
    assert_eq!(my_payload_shares.len(), n);
    let index_of: HashMap<u64, usize> = elements.iter().enumerate().map(|(j, &e)| (e, j)).collect();
    assert_eq!(index_of.len(), n, "sender elements must be distinct");
    let params = psi_params(receiver_size, n);
    let bins = params.bins;
    // Steps 1–2: ξ₁ and the first shared OEP (this side holds ξ₁).
    let mut xi1: Vec<usize> = (0..n + bins).collect();
    xi1.shuffle(rng);
    let mut xi1_inv = vec![0usize; n + bins];
    for (j, &v) in xi1.iter().enumerate() {
        xi1_inv[v] = j;
    }
    let mut ext = my_payload_shares.to_vec();
    ext.resize(n + bins, 0);
    let zprime_shares = shared_oep_perm_holder(ch, &xi1, &ext, ring, ot_recv);
    // Step 3: binning + OPPRFs.
    let (simple, k1, k2) = negotiate_simple(ch, elements, &params, kkrt);
    let s: Vec<u64> = (0..bins).map(|_| rng.gen()).collect();
    let member_prog: Vec<Vec<(u64, u64)>> = simple
        .bins
        .iter()
        .enumerate()
        .map(|(b, ys)| ys.iter().map(|&y| (y, s[b])).collect())
        .collect();
    opprf_program_with_key(ch, k1, &member_prog, params.degree, rng);
    let w: Vec<u64> = (0..bins).map(|_| rng.gen()).collect();
    let index_prog: Vec<Vec<(u64, u64)>> = simple
        .bins
        .iter()
        .enumerate()
        .map(|(b, ys)| {
            ys.iter()
                .map(|&y| (y, xi1_inv[index_of[&y]] as u64 ^ w[b]))
                .collect()
        })
        .collect();
    opprf_program_with_key(ch, k2, &index_prog, params.degree, rng);
    // Step 4: garble the k circuit; collect the indicator-mask shares.
    let circuit = k_circuit(bins, ring.bits() as usize);
    let mut ind_shares = Vec::with_capacity(bins);
    let mut my_bits = Vec::new();
    let mut swd_bits = Vec::new();
    for b in 0..bins {
        let r = ring.random(rng);
        ind_shares.push(ring.neg(r));
        my_bits.extend(u64_to_bits(r, ring.bits() as usize));
        swd_bits.extend(u64_to_bits(s[b], 64));
        swd_bits.extend(u64_to_bits(w[b], 64));
        swd_bits.extend(u64_to_bits(xi1_inv[n + b] as u64, 64));
    }
    my_bits.extend(swd_bits);
    let out = match take_garble(gc_bank, &circuit) {
        Some(m) => garble_online(
            ch,
            &circuit,
            m,
            &my_bits,
            ot_send,
            OutputMode::RevealToEvaluator,
        ),
        None => garble_circuit(
            ch,
            &circuit,
            &my_bits,
            ot_send,
            hasher,
            rng,
            OutputMode::RevealToEvaluator,
        ),
    };
    debug_assert!(out.is_none());
    // Step 5: second shared OEP (receiver holds ξ₂).
    let payload_shares = shared_oep_other(ch, &zprime_shares, bins, ring, ot_send, rng);
    PsiOutput {
        cuckoo: None,
        ind_shares,
        payload_shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_transport::run_protocol;

    fn run(x: Vec<u64>, y: Vec<u64>, payloads: Vec<u64>) -> (PsiOutput, PsiOutput, RingCtx) {
        // One hasher choice drives OT, OPRF, and garbling on both sides.
        let hasher = TweakHasher::default();
        let ring = RingCtx::new(32);
        let mut setup = StdRng::seed_from_u64(31);
        let (recv_sh, send_sh) = ring.share_vec(&payloads, &mut setup);
        let x_len = x.len();
        let (r, s, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(32);
                let mut kkrt = KkrtReceiver::setup(ch, &mut rng, hasher);
                let mut ot_r = OtReceiver::setup(ch, &mut rng, hasher);
                let mut ot_s = OtSender::setup(ch, &mut rng, hasher);
                shared_payload_psi_receiver(
                    ch,
                    &x,
                    &recv_sh,
                    ring,
                    &mut kkrt,
                    &mut ot_r,
                    &mut ot_s,
                    hasher,
                    &mut rng,
                    &mut VecDeque::new(),
                )
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(33);
                let mut kkrt = KkrtSender::setup(ch, &mut rng, hasher);
                // Setup order must complement the receiver's: their
                // OtReceiver pairs with our OtSender and vice versa.
                let mut ot_s = OtSender::setup(ch, &mut rng, hasher);
                let mut ot_r = OtReceiver::setup(ch, &mut rng, hasher);
                shared_payload_psi_sender(
                    ch,
                    &y,
                    x_len,
                    &send_sh,
                    ring,
                    &mut kkrt,
                    &mut ot_s,
                    &mut ot_r,
                    hasher,
                    &mut rng,
                    &mut VecDeque::new(),
                )
            },
        );
        (r, s, ring)
    }

    #[test]
    fn shared_payloads_land_in_matching_bins() {
        let x = vec![1u64, 2, 3, 4, 5, 6];
        let y = vec![2u64, 4, 9];
        let payloads = vec![222u64, 444, 999];
        let (r, s, ring) = run(x, y, payloads);
        let cuckoo = r.cuckoo.as_ref().unwrap();
        let ind = ring.reconstruct_vec(&r.ind_shares, &s.ind_shares);
        let val = ring.reconstruct_vec(&r.payload_shares, &s.payload_shares);
        for (b, slot) in cuckoo.bins.iter().enumerate() {
            match slot {
                Some(2) => {
                    assert_eq!(ind[b], 1);
                    assert_eq!(val[b], 222);
                }
                Some(4) => {
                    assert_eq!(ind[b], 1);
                    assert_eq!(val[b], 444);
                }
                _ => {
                    assert_eq!(ind[b], 0, "bin {b}");
                    assert_eq!(val[b], 0, "bin {b}");
                }
            }
        }
    }

    #[test]
    fn no_matches_all_zero() {
        let (r, s, ring) = run(vec![1, 2, 3], vec![7, 8], vec![70, 80]);
        let ind = ring.reconstruct_vec(&r.ind_shares, &s.ind_shares);
        let val = ring.reconstruct_vec(&r.payload_shares, &s.payload_shares);
        assert!(ind.iter().all(|&v| v == 0));
        assert!(val.iter().all(|&v| v == 0));
    }
}
