//! Oblivious programmable PRF (OPPRF).
//!
//! The sender *programs* target values: for each bin b and each of his
//! elements y in that bin, F(b, y) must equal a chosen target t_{b,y};
//! everywhere else F looks random. The receiver evaluates F at one point
//! per bin (her cuckoo-placed element) and cannot tell programmed from
//! random outputs.
//!
//! Construction (Pinkas et al., polynomial-hint variant): run a KKRT OPRF
//! batch keyed per bin, then the sender interpolates, per bin, the
//! polynomial through (enc(y), t_{b,y} ⊕ OPRF(b, y)) — padded with random
//! points to the public degree bound — and ships all hint polynomials. The
//! receiver outputs OPRF(b, x_b) ⊕ hint_b(enc(x_b)).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secyan_crypto::gf64::{poly_eval_batch, poly_interpolate, Gf64};
use secyan_crypto::sha256::{digest_to_u64, Sha256};
use secyan_crypto::Zeroize;
use secyan_ot::{KkrtReceiver, KkrtSender};
use secyan_par as par;
use secyan_transport::{Channel, ReadExt, WriteExt};

/// Minimum bins per worker for the parallel per-bin stages. A bin costs
/// O(degree²) GF(2^64) work (interpolation) or O(degree) (evaluation),
/// so modest batches already amortize a dispatch.
const BINS_PER_PART: usize = 32;

/// Encoding of a PSI element as an OPRF input. Real elements and
/// receiver-side dummies live in disjoint domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsiItem {
    /// A real element.
    Real(u64),
    /// The dummy filling an empty receiver bin (parameterized by the bin
    /// index so dummies are distinct).
    Dummy(u64),
}

impl PsiItem {
    /// Byte encoding fed to the OPRF.
    pub fn encode(self) -> [u8; 9] {
        let mut out = [0u8; 9];
        match self {
            PsiItem::Real(v) => {
                out[0] = 0;
                out[1..].copy_from_slice(&v.to_le_bytes());
            }
            PsiItem::Dummy(b) => {
                out[0] = 1;
                out[1..].copy_from_slice(&b.to_le_bytes());
            }
        }
        out
    }
}

/// Map an element to its interpolation x-coordinate. A salt lets the
/// sender re-draw on the (≈2^{-64}·pairs) chance of an in-bin collision.
fn x_coord(salt: u64, item: PsiItem) -> Gf64 {
    let mut h = Sha256::new();
    h.update(b"opprf-x");
    h.update(&salt.to_le_bytes());
    h.update(&item.encode());
    Gf64(digest_to_u64(&h.finalize()))
}

/// Sender side: program one target per (bin, element) pair.
///
/// `programs[b]` lists `(element, target)` pairs for bin b; `degree` is the
/// public per-bin point count (pad bound ≥ every bin's length). Sends the
/// hints; returns nothing (the targets are the sender's own secrets).
pub fn opprf_program<R: Rng + ?Sized>(
    ch: &mut Channel,
    kkrt: &mut KkrtSender,
    programs: &[Vec<(u64, u64)>],
    degree: usize,
    rng: &mut R,
) {
    let bins = programs.len();
    let key = kkrt.key_batch(ch, bins);
    opprf_program_with_key(ch, key, programs, degree, rng);
}

/// Like [`opprf_program`], but against a [`KkrtSenderKey`] the caller
/// already obtained via [`KkrtSender::key_batch`]. This lets protocol
/// layers pull *all* their KKRT correction reads forward (the receiver
/// stages every batch's corrections in one super-frame) and program the
/// hints afterwards.
pub fn opprf_program_with_key<R: Rng + ?Sized>(
    ch: &mut Channel,
    key: secyan_ot::KkrtSenderKey,
    programs: &[Vec<(u64, u64)>],
    degree: usize,
    rng: &mut R,
) {
    let bins = programs.len();
    let go_par = par::threads() > 1 && bins >= 2 * BINS_PER_PART;
    // Choose a salt with collision-free x-coordinates in every bin. Bins
    // are checked independently; a salt is accepted iff every bin comes
    // back collision-free, which is the same predicate the serial loop
    // computes, so the chosen salt does not depend on the thread count.
    let (salt, coords) = 'salt: {
        let mut salt = rng.gen::<u64>();
        loop {
            let all: Vec<Option<Vec<Gf64>>> = par::with_pool_if(go_par, |pool| {
                pool.map(programs, BINS_PER_PART, |_, prog| {
                    let mut xs: Vec<Gf64> = prog
                        .iter()
                        .map(|&(y, _)| x_coord(salt, PsiItem::Real(y)))
                        .collect();
                    let before = xs.len();
                    xs.sort_by_key(|g| g.0);
                    xs.dedup();
                    (xs.len() == before).then_some(xs)
                })
            });
            if all.iter().all(Option::is_some) {
                let coords = all.into_iter().map(|x| x.expect("checked")).collect();
                break 'salt (salt, coords);
            }
            salt = salt.wrapping_add(1);
        }
    };
    let coords: Vec<Vec<Gf64>> = coords;
    ch.send_u64(salt);
    // Pre-draw one pad seed per bin *serially* from the caller's RNG, so
    // the padding points each bin generates are independent of how bins
    // are scheduled across workers.
    let mut bin_rand: Vec<u64> = programs.iter().map(|_| rng.gen()).collect();
    let hints: Vec<Vec<u64>> = par::with_pool_if(go_par, |pool| {
        pool.map(programs, BINS_PER_PART, |b, prog| {
            assert!(
                prog.len() <= degree,
                "bin {b} has {} items, exceeding the public bound {degree}",
                prog.len()
            );
            let mut points: Vec<(Gf64, Gf64)> = prog
                .iter()
                .map(|&(y, t)| {
                    let f = key.eval(b, &PsiItem::Real(y).encode());
                    (x_coord(salt, PsiItem::Real(y)), Gf64(t ^ f))
                })
                .collect();
            // Pad with random points at fresh x-coordinates, drawn from
            // this bin's private stream.
            // taint-ok: seeded from bin_rand[b], which was drawn serially
            // before the dispatch — the stream is a pure function of the
            // bin index, deterministic at any thread count.
            let mut fill_rng = StdRng::seed_from_u64(bin_rand[b]);
            let mut used: Vec<Gf64> = coords[b].clone();
            while points.len() < degree {
                let x = Gf64(fill_rng.gen()); // taint-ok: per-bin deterministic stream.
                if used.contains(&x) {
                    continue;
                }
                used.push(x);
                points.push((x, Gf64(fill_rng.gen()))); // taint-ok: per-bin deterministic stream.
            }
            let coeffs = poly_interpolate(&points);
            coeffs.iter().map(|c| c.0).collect()
        })
    });
    // Pad seeds derive mask material; scrub them once the hints exist.
    bin_rand.zeroize();
    let mut hint_words: Vec<u64> = Vec::with_capacity(bins * degree);
    for h in &hints {
        hint_words.extend_from_slice(h);
    }
    ch.send_u64_slice(&hint_words);
}

/// In-flight receiver-side OPPRF state: the KKRT batch already ran (its
/// corrections are staged outbound), only the sender's salt + hints are
/// pending. Produced by [`opprf_evaluate_begin`], consumed by
/// [`opprf_evaluate_finish`].
pub struct OpprfEval {
    oprf_out: Vec<u64>,
    queries: Vec<PsiItem>,
    degree: usize,
}

/// First half of [`opprf_evaluate`]: run the KKRT batch. This is
/// *send-only* on the receiver side (banked: code corrections; fresh: the
/// masked column bundle), so several evaluations can be begun back-to-back
/// — their corrections coalesce into one super-frame — before any of them
/// blocks on the sender's hints.
pub fn opprf_evaluate_begin(
    ch: &mut Channel,
    kkrt: &mut KkrtReceiver,
    queries: &[PsiItem],
    degree: usize,
) -> OpprfEval {
    let encodings: Vec<[u8; 9]> = queries.iter().map(|q| q.encode()).collect();
    let refs: Vec<&[u8]> = encodings.iter().map(|e| e.as_slice()).collect();
    OpprfEval {
        oprf_out: kkrt.eval_batch(ch, &refs),
        queries: queries.to_vec(),
        degree,
    }
}

/// Second half of [`opprf_evaluate_begin`]: receive the salt + hint
/// polynomials and combine them with the OPRF outputs.
pub fn opprf_evaluate_finish(ch: &mut Channel, pending: OpprfEval) -> Vec<u64> {
    let OpprfEval {
        oprf_out,
        queries,
        degree,
    } = pending;
    let bins = queries.len();
    let salt = ch.recv_u64();
    let hint_words = ch.recv_u64_vec(bins * degree);
    let go_par = par::threads() > 1 && bins >= 2 * BINS_PER_PART;
    // Each bin's hint evaluates independently. The x-coordinates (SHA per
    // bin) map across the pool, then each worker runs lockstep Horner over
    // its contiguous slab of bins via the batched GF(2^64) kernel — the
    // per-bin coefficient Vec and per-multiply dispatch of the old loop
    // are gone. The wire layout is already flat `[b*degree..(b+1)*degree]`.
    let xs: Vec<Gf64> = par::with_pool_if(go_par, |pool| {
        pool.map(&queries, BINS_PER_PART, |_, &q| x_coord(salt, q))
    });
    let coeffs: Vec<Gf64> = hint_words.iter().map(|&w| Gf64(w)).collect();
    let mut out = vec![0u64; bins];
    par::with_pool_if(go_par, |pool| {
        pool.chunks_mut(&mut out, 1, BINS_PER_PART, |off, chunk| {
            let n = chunk.len();
            let evals = poly_eval_batch(
                &coeffs[off * degree..(off + n) * degree],
                degree,
                &xs[off..off + n],
            );
            for ((o, e), &f) in chunk.iter_mut().zip(&evals).zip(&oprf_out[off..off + n]) {
                *o = f ^ e.0;
            }
        });
    });
    out
}

/// Receiver side: evaluate F(b, queries[b]) for every bin.
pub fn opprf_evaluate(
    ch: &mut Channel,
    kkrt: &mut KkrtReceiver,
    queries: &[PsiItem],
    degree: usize,
) -> Vec<u64> {
    let pending = opprf_evaluate_begin(ch, kkrt, queries, degree);
    opprf_evaluate_finish(ch, pending)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use secyan_crypto::TweakHasher;
    use secyan_transport::run_protocol;

    fn run_opprf(programs: Vec<Vec<(u64, u64)>>, queries: Vec<PsiItem>, degree: usize) -> Vec<u64> {
        let (_, out, _) = run_protocol(
            move |ch| {
                let mut rng = StdRng::seed_from_u64(11);
                let mut kkrt = KkrtSender::setup(ch, &mut rng, TweakHasher::default());
                opprf_program(ch, &mut kkrt, &programs, degree, &mut rng);
            },
            move |ch| {
                let mut rng = StdRng::seed_from_u64(12);
                let mut kkrt = KkrtReceiver::setup(ch, &mut rng, TweakHasher::default());
                opprf_evaluate(ch, &mut kkrt, &queries, degree)
            },
        );
        out
    }

    #[test]
    fn programmed_points_hit_targets() {
        let programs = vec![
            vec![(10, 111), (20, 222)],
            vec![(30, 333)],
            vec![],
            vec![(40, 444), (50, 555), (60, 666)],
        ];
        let queries = vec![
            PsiItem::Real(20),
            PsiItem::Real(30),
            PsiItem::Dummy(2),
            PsiItem::Real(50),
        ];
        let out = run_opprf(programs, queries, 4);
        assert_eq!(out[0], 222);
        assert_eq!(out[1], 333);
        assert_eq!(out[3], 555);
    }

    #[test]
    fn unprogrammed_points_miss() {
        let programs = vec![vec![(10, 111)], vec![(20, 222)]];
        let queries = vec![PsiItem::Real(99), PsiItem::Dummy(1)];
        let out = run_opprf(programs, queries, 2);
        assert_ne!(out[0], 111);
        assert_ne!(out[1], 222);
    }

    #[test]
    fn same_element_in_different_bins() {
        // The per-bin KKRT instance separates identical inputs across bins.
        let programs = vec![vec![(7, 1)], vec![(7, 2)]];
        let out = run_opprf(programs, vec![PsiItem::Real(7), PsiItem::Real(7)], 1);
        assert_eq!(out, vec![1, 2]);
    }
}
