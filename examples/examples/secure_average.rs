//! Query composition (§7): a secure AVG via two Yannakakis runs.
//!
//! `avg` has no semiring, so the paper decomposes it: compute SUM and
//! COUNT as two join-aggregate queries *in shared form*, then one garbled
//! division circuit reveals only the quotients. This example averages
//! treatment costs per disease class over the Example-1.1 schema — neither
//! party ever sees the intermediate sums or counts.
//!
//! ```text
//! cargo run --release -p secyan-examples --example secure_average
//! ```

use secyan_core::ext::{align_shared_groups, reveal_ratios};
use secyan_core::protocol::secure_yannakakis_shared;
use secyan_core::{SecureQuery, Session};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_transport::{run_protocol, Role};

fn main() {
    // Bob's hospital records: R2(person, disease | cost).
    let r2_rows = vec![
        (vec![1u64, 1u64], 1000u64),
        (vec![2, 1], 3000),
        (vec![3, 1], 2000),
        (vec![1, 2], 500),
        (vec![2, 2], 700),
    ];
    // Alice: disease → class mapping, R3(disease, class | 1).
    let r3_rows = vec![(vec![1u64, 10u64], 1u64), (vec![2, 20], 1)];

    // The class domain is public (it is part of the agreed schema).
    let class_domain: Vec<Vec<u64>> = vec![vec![10], vec![20]];

    // Two queries over the same join, differing only in annotations:
    // SUM uses cost, COUNT uses 1.
    let build_query = || {
        SecureQuery::new(
            vec![
                vec!["disease".into()],
                vec!["disease".into(), "class".into()],
            ],
            vec![Role::Bob, Role::Alice],
            JoinTree::chain(2),
            vec!["class".into()],
        )
    };

    let run_party = move |role: Role| {
        let r2_rows = r2_rows.clone();
        let r3_rows = r3_rows.clone();
        let class_domain = class_domain.clone();
        move |ch: &mut secyan_transport::Channel| {
            let mut sess = Session::new(
                ch,
                RingCtx::new(32),
                TweakHasher::Sha256,
                role.is_alice() as u64,
            );
            let mut aligned = Vec::new();
            for count_mode in [false, true] {
                // Bob's relation: disease with cost (or 1 for COUNT).
                let r2 = Relation::from_rows(
                    NaturalRing::paper_default(),
                    vec!["disease".into()],
                    r2_rows
                        .iter()
                        .map(|(t, c)| (vec![t[1]], if count_mode { 1 } else { *c }))
                        .collect(),
                );
                let r3 = Relation::from_rows(
                    NaturalRing::paper_default(),
                    vec!["disease".into(), "class".into()],
                    r3_rows.clone(),
                );
                let my_rels = match role {
                    Role::Alice => vec![None, Some(r3)],
                    Role::Bob => vec![Some(r2), None],
                };
                let res =
                    secure_yannakakis_shared(&mut sess, &build_query(), &my_rels, Role::Alice);
                aligned.push(align_shared_groups(
                    &mut sess,
                    &res.tuples,
                    &res.annot_shares,
                    &class_domain,
                    Role::Alice,
                ));
            }
            // avg = sum / count, with two fixed-point decimals (×100).
            reveal_ratios(&mut sess, &aligned[0], &aligned[1], 100, Role::Alice)
        }
    };

    let (avgs, _, _) = run_protocol(run_party(Role::Alice), run_party(Role::Bob));

    println!("Average treatment cost per class (Alice's view):");
    for (class, avg) in [(10u64, avgs[0]), (20, avgs[1])] {
        println!("  class {class}: {:.2}", avg as f64 / 100.0);
    }
    // class 10: (1000 + 3000 + 2000) / 3 = 2000.00
    // class 20: (500 + 700) / 2        =  600.00
    assert_eq!(avgs, vec![200_000, 60_000]);
    println!("\nNeither party ever saw the per-class SUM or COUNT. ✓");
}
