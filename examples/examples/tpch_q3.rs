//! TPC-H Q3 end to end: generate a dataset, run the secure protocol, and
//! compare against the plaintext engine — a miniature of the paper's
//! Figure 2 experiment.
//!
//! ```text
//! cargo run --release -p secyan-examples --example tpch_q3 [scale_mb]
//! ```
//!
//! `scale_mb` defaults to 0.1 (a 0.1 MB-equivalent TPC-H dump); the paper
//! ran 1–100 MB on AES-NI hardware.

use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::NaturalRing;
use secyan_tpch::queries::{canonical, run_plaintext_instance, run_secure_instance, PaperQuery};
use secyan_tpch::{Database, Scale};
use secyan_transport::run_protocol;
use std::time::Instant;

fn main() {
    let mb: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale in MB"))
        .unwrap_or(0.1);
    let ring = NaturalRing::paper_default();

    println!("Generating a {mb} MB-equivalent TPC-H database...");
    let db = Database::generate(Scale::mb(mb), 42);
    let spec = PaperQuery::Q3.build(&db, ring);
    println!(
        "  {} input tuples across {} relations (selections dummied out — their selectivity is private).",
        spec.input_tuples(),
        spec.subqueries[0].relations.len()
    );

    // Plaintext reference (the figures' non-private baseline).
    let t0 = Instant::now();
    let want = canonical(run_plaintext_instance(&spec, ring));
    let plain_time = t0.elapsed();
    println!(
        "Plaintext Yannakakis: {} result rows in {:?}.",
        want.len(),
        plain_time
    );

    // The secure protocol, both parties as real threads.
    println!("Running secure Yannakakis (this garbles real circuits)...");
    let (sa, sb) = (spec.clone(), spec.clone());
    let t0 = Instant::now();
    let (rows, _, stats) = run_protocol(
        move |ch| {
            let mut sess = secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::Fast, 1);
            run_secure_instance(&mut sess, &sa)
        },
        move |ch| {
            let mut sess = secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::Fast, 2);
            run_secure_instance(&mut sess, &sb)
        },
    );
    let sy_time = t0.elapsed();
    println!(
        "Secure Yannakakis: {} result rows in {:?}, {:.2} MB of traffic.",
        rows.len(),
        sy_time,
        stats.total_bytes() as f64 / 1e6
    );

    assert_eq!(canonical(rows), want, "secure result must match plaintext");
    println!("Secure and plaintext results match exactly. ✓");
    println!(
        "\nSlowdown vs. plaintext: {:.0}× — the price of learning nothing.",
        sy_time.as_secs_f64() / plain_time.as_secs_f64().max(1e-9)
    );
    println!("(For the naive garbled-circuit comparison, run the `figures` binary.)");
}
