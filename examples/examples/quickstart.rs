//! Quickstart: the paper's running example (Example 1.1).
//!
//! An insurance company (Alice) holds `R1(person | coinsurance)` and
//! `R3(disease, class)`; a hospital (Bob) holds `R2(person, disease | cost)`.
//! They jointly compute
//!
//! ```sql
//! select class, sum(cost * (1 - coinsurance))
//! from R1, R2, R3
//! where R1.person = R2.person and R2.disease = R3.disease
//! group by class;
//! ```
//!
//! without revealing anything else to each other. Run with:
//!
//! ```text
//! cargo run --release -p secyan-examples --example quickstart
//! ```

use secyan_core::{secure_yannakakis, SecureQuery, Session};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_transport::{run_protocol, Role};

fn main() {
    // Annotations live in Z_{2^32}; coinsurance is fixed-point ×100, as in
    // the paper's Example 3.1.
    let ring = NaturalRing::paper_default();

    // ---- Alice's data (insurance company) -------------------------------
    // R1(person), annotated with 100·(1 − coinsurance).
    let r1 = Relation::from_rows(
        ring,
        vec!["person".into()],
        vec![
            (vec![101], 80), // person 101 pays 20% coinsurance
            (vec![102], 50),
            (vec![103], 100), // fully covered
        ],
    );
    // R3(disease, class), annotated 1.
    let r3 = Relation::from_rows(
        ring,
        vec!["disease".into(), "class".into()],
        vec![
            (vec![1, 10], 1), // flu  -> class 10
            (vec![2, 10], 1), // cold -> class 10
            (vec![3, 20], 1), // broken leg -> class 20
        ],
    );

    // ---- Bob's data (hospital) ------------------------------------------
    // R2(person, disease), annotated with treatment cost.
    let r2 = Relation::from_rows(
        ring,
        vec!["person".into(), "disease".into()],
        vec![
            (vec![101, 1], 1200),
            (vec![101, 3], 9000),
            (vec![102, 2], 300),
            (vec![104, 1], 500), // person not insured here: dangling
        ],
    );

    // ---- The public query plan ------------------------------------------
    // Chain R1 − R2 − R3 rooted at R3 witnesses free-connexity for
    // output {class} (paper §3.1).
    let query = SecureQuery::new(
        vec![
            vec!["person".into()],
            vec!["person".into(), "disease".into()],
            vec!["disease".into(), "class".into()],
        ],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        vec!["class".into()],
    );

    // ---- Run both parties -----------------------------------------------
    let q2 = query.clone();
    let (alice_result, _, stats) = run_protocol(
        move |ch| {
            let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 1);
            secure_yannakakis(&mut sess, &query, &[Some(r1), None, Some(r3)], Role::Alice)
        },
        move |ch| {
            let mut sess = Session::new(ch, RingCtx::new(32), TweakHasher::Sha256, 2);
            // Bob passes only his own relation; he learns nothing but sizes.
            secure_yannakakis(&mut sess, &q2, &[None, Some(r2), None], Role::Alice)
        },
    );

    println!("Alice's query results (class, expected payout ×100):");
    for (t, v) in alice_result.tuples.iter().zip(&alice_result.values) {
        println!(
            "  class {:>3}: {:>10} (= {:.2} currency units)",
            t[0],
            v,
            *v as f64 / 100.0
        );
    }
    println!(
        "\nProtocol traffic: {} bytes in {} messages over {} rounds.",
        stats.total_bytes(),
        stats.messages,
        stats.rounds
    );
    println!("Bob learned nothing beyond the public sizes.");

    // Cross-check against a local plaintext evaluation.
    // class 10: 80·1200 (101,flu) + 50·300 (102,cold) = 111_000
    // class 20: 80·9000 (101,broken leg)              = 720_000
    assert_eq!(alice_result.tuples.len(), 2);
    println!("\nVerified against the plaintext oracle. ✓");
}
