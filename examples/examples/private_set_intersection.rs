//! Using the PSI substrate directly: circuit PSI with payloads (§5.3).
//!
//! Two advertisers hold customer lists; one also holds per-customer spend.
//! They compute shares of "is this customer common?" and of the matched
//! spend — then (by choice, not by protocol necessity) open only the
//! *total* spend over the intersection, never the membership of any
//! individual.
//!
//! ```text
//! cargo run --release -p secyan-examples --example private_set_intersection
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_psi::{psi_receiver, psi_sender};
use secyan_transport::{run_protocol, ReadExt, WriteExt};

fn main() {
    // One hasher choice drives OT, OPRF, and garbling on both sides.
    let hasher = TweakHasher::default();
    let ring = RingCtx::new(32);
    // Alice's customer ids.
    let alice_ids: Vec<u64> = vec![11, 23, 42, 57, 64, 99, 100, 123];
    // Bob's customers with their annual spend.
    let bob_items: Vec<(u64, u64)> =
        vec![(23, 1_500), (42, 800), (77, 9_999), (100, 2_700), (200, 50)];
    let (a_len, b_len) = (alice_ids.len(), bob_items.len());
    let expected_total = 1_500 + 800 + 2_700;

    let (alice_total, bob_view, stats) = run_protocol(
        move |ch| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut kkrt = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            let mut ot = secyan_ot::OtReceiver::setup(ch, &mut rng, hasher);
            let out = psi_receiver(
                ch,
                &alice_ids,
                b_len,
                ring,
                &mut kkrt,
                &mut ot,
                hasher,
                &mut std::collections::VecDeque::new(),
            );
            // Sum the payload shares locally: a share of the intersection
            // total. Opening just this one scalar reveals the total only.
            let my_sum = out
                .payload_shares
                .iter()
                .fold(0u64, |acc, &s| ring.add(acc, s));
            let their_sum = ch.recv_u64();
            ring.add(my_sum, their_sum)
        },
        move |ch| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut kkrt = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            let mut ot = secyan_ot::OtSender::setup(ch, &mut rng, hasher);
            let out = psi_sender(
                ch,
                &bob_items,
                a_len,
                ring,
                &mut kkrt,
                &mut ot,
                hasher,
                &mut rng,
                &mut std::collections::VecDeque::new(),
            );
            let my_sum = out
                .payload_shares
                .iter()
                .fold(0u64, |acc, &s| ring.add(acc, s));
            ch.send_u64(my_sum);
            // Bob's shares alone are uniform noise:
            out.payload_shares
        },
    );

    println!("Alice learned: total spend over the intersection = {alice_total}");
    println!(
        "Bob's view of the per-bin payload shares (uniform noise): {:?} ...",
        &bob_view[..4.min(bob_view.len())]
    );
    println!(
        "Traffic: {:.1} KB over {} rounds.",
        stats.total_bytes() as f64 / 1e3,
        stats.rounds
    );
    assert_eq!(alice_total, expected_total);
    println!("\nMatches the expected {expected_total}. Neither party learned *which* customers overlap. ✓");
}
