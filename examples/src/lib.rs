//! Example helpers.
