//! Fault injection: a malfunctioning or malicious-looking transport must
//! surface as a *typed* [`ProtocolError`] — never a panic, never a hang,
//! and destructors (including the zeroize-on-drop `Secret` wrappers the
//! session keys live in) must still run on the error path.
//!
//! The `FaultChannel` relay in `secyan-transport` injects four fault
//! classes deterministically: truncated messages, split writes, reordered
//! flushes within a round, and mid-protocol peer disconnects. Each class
//! gets a dedicated test here, plus a seed-driven sweep where every
//! outcome must be "correct result" or "typed error" — nothing else.
//! See DESIGN.md §10.

use secyan_core::{secure_yannakakis, Session};
use secyan_crypto::TweakHasher;
use secyan_testkit::{oracle, run_secure, run_secure_with_faults, Instance};
use secyan_transport::{try_run_protocol_with_faults, FaultKind, FaultPlan, ProtocolError, Role};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The fixed instance the fault tests perturb: small enough to rerun
/// dozens of times, large enough that the protocol has a few thousand
/// messages to aim faults at.
fn victim() -> Instance {
    Instance::generate(1)
}

/// Per-direction message counts of a clean run, for placing faults
/// within the actual message horizon.
fn horizons(inst: &Instance) -> (u64, u64) {
    let clean = run_secure(inst);
    (
        clean.stats.messages_alice_to_bob,
        clean.stats.messages_bob_to_alice,
    )
}

/// Assert the outcome of a faulted run is a typed error (any variant:
/// the injected fault may surface directly at one party and cascade to
/// the other as a peer disconnect — whichever party fails first wins).
fn assert_typed_failure(inst: &Instance, plan: FaultPlan, what: &str) {
    match run_secure_with_faults(inst, &plan) {
        Err(e) => {
            // Displaying the error must work (it feeds operator logs).
            let _ = e.to_string();
        }
        Ok(_) => panic!("{what}: protocol succeeded despite the injected fault"),
    }
}

#[test]
fn truncated_message_yields_typed_error_at_every_phase() {
    let inst = victim();
    let (a2b, b2a) = horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        // First message (OT bootstrap), mid-protocol, and near the end.
        for index in [0, horizon / 2, horizon.saturating_sub(2)] {
            assert_typed_failure(
                &inst,
                FaultPlan::single(dir, index, FaultKind::Truncate),
                &format!("truncate {dir:?} message {index}"),
            );
        }
    }
}

#[test]
fn split_write_yields_typed_error() {
    let inst = victim();
    let (a2b, b2a) = horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        for index in [1, horizon / 3] {
            assert_typed_failure(
                &inst,
                FaultPlan::single(dir, index, FaultKind::SplitWrite),
                &format!("split-write {dir:?} message {index}"),
            );
        }
    }
}

#[test]
fn peer_disconnect_yields_typed_error_not_a_hang() {
    let inst = victim();
    let (a2b, b2a) = horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        for index in [0, horizon / 2] {
            assert_typed_failure(
                &inst,
                FaultPlan::single(dir, index, FaultKind::Disconnect),
                &format!("disconnect {dir:?} after message {index}"),
            );
        }
    }
}

/// Reordering only bites when the sender emits two frames back-to-back
/// (otherwise the relay's flush timeout degrades it to in-order
/// delivery). Find a same-direction burst in the clean transcript and
/// aim the reorder at its first frame: the receiver must see the
/// sequence-number gap and fail typed.
#[test]
fn reordered_flush_within_a_round_yields_typed_error() {
    let inst = victim();
    let clean = run_secure(&inst);
    let lengths = clean.lengths();
    let mut tested = 0;
    for dir in [Role::Alice, Role::Bob] {
        // Index (within `dir`'s own stream) of the first frame of a
        // same-direction burst, skipping a few so the fault lands past
        // the bootstrap.
        let mut per_dir_index = 0u64;
        let mut bursts = Vec::new();
        for w in lengths.windows(2) {
            if w[0].0 == dir {
                if w[1].0 == dir {
                    bursts.push(per_dir_index);
                }
                per_dir_index += 1;
            }
        }
        assert!(
            !bursts.is_empty(),
            "clean transcript has no {dir:?} burst to reorder"
        );
        for &index in [bursts.first(), bursts.get(bursts.len() / 2)]
            .into_iter()
            .flatten()
        {
            assert_typed_failure(
                &inst,
                FaultPlan::single(dir, index, FaultKind::Reorder),
                &format!("reorder {dir:?} burst at message {index}"),
            );
            tested += 1;
        }
    }
    assert!(tested >= 2, "reorder fault never exercised");
}

/// Seed-driven sweep: random fault plans over the real message horizon.
/// Every outcome must be either the correct result (the fault degraded
/// harmlessly — e.g. a reorder outside a burst) or a typed error. A hang
/// fails via the test harness; a panic would fail the test itself.
#[test]
fn seeded_fault_sweep_is_always_typed_or_correct() {
    let inst = victim();
    let expected = oracle(&inst);
    let (a2b, b2a) = horizons(&inst);
    let horizon = a2b.max(b2a);
    let mut failures = 0;
    for seed in 0..24 {
        match run_secure_with_faults(&inst, &FaultPlan::from_seed(seed, horizon)) {
            Ok((rows, _)) => assert_eq!(
                rows,
                expected,
                "faulted run (fault seed {seed}) succeeded with a wrong result on {}",
                inst.describe()
            ),
            Err(e) => {
                let _ = e.to_string();
                failures += 1;
            }
        }
    }
    // The sweep is only meaningful if a healthy share of plans actually
    // disrupt the run (truncate/split/disconnect within the horizon
    // always should).
    assert!(
        failures >= 8,
        "only {failures}/24 seeded fault plans disrupted the protocol"
    );
}

/// An unfaulted run through the fault harness is transparent: same
/// result as the oracle, `Ok` outcome.
#[test]
fn empty_fault_plan_is_transparent() {
    let inst = victim();
    let (rows, stats) = run_secure_with_faults(&inst, &FaultPlan::none())
        .expect("no faults injected, protocol must succeed");
    assert_eq!(rows, oracle(&inst));
    assert!(stats.messages > 0);
}

/// Guard object standing in for any secret state a party holds on its
/// stack: its destructor must run when the protocol dies with a typed
/// error, because that is the exact mechanism (`Drop`) the
/// `secyan-crypto::Secret` zeroize-on-drop wrappers rely on.
struct ZeroizeCanary(Arc<AtomicBool>);

impl Drop for ZeroizeCanary {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Secrets are still dropped (and therefore zeroized) on the error path:
/// a canary held across `secure_yannakakis` by each party must have its
/// destructor run even when a mid-protocol disconnect kills the run.
#[test]
fn secrets_are_dropped_on_the_error_path() {
    let inst = victim();
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let alice_dropped = Arc::new(AtomicBool::new(false));
    let bob_dropped = Arc::new(AtomicBool::new(false));
    let (ac, bc) = (alice_dropped.clone(), bob_dropped.clone());
    let plan = FaultPlan::single(Role::Alice, 4, FaultKind::Disconnect);
    let outcome = try_run_protocol_with_faults(
        &plan,
        move |ch| {
            let canary = ZeroizeCanary(ac);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), 11);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice);
            drop(canary);
        },
        move |ch| {
            let canary = ZeroizeCanary(bc);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), 12);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
            drop(canary);
        },
    );
    assert!(
        matches!(outcome, Err(ProtocolError::Transport(_))),
        "disconnect must surface as a typed transport error, got {outcome:?}"
    );
    assert!(
        alice_dropped.load(Ordering::SeqCst),
        "alice's secret state was leaked (not dropped) on the error path"
    );
    assert!(
        bob_dropped.load(Ordering::SeqCst),
        "bob's secret state was leaked (not dropped) on the error path"
    );
}
