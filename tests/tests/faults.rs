//! Fault injection: a malfunctioning or malicious-looking transport must
//! surface as a *typed* [`ProtocolError`] — never a panic, never a hang,
//! and destructors (including the zeroize-on-drop `Secret` wrappers the
//! session keys live in) must still run on the error path.
//!
//! The `FaultChannel` relay in `secyan-transport` injects four fault
//! classes deterministically: truncated messages, split writes, reordered
//! flushes within a round, and mid-protocol peer disconnects. Each class
//! gets a dedicated test here, plus a seed-driven sweep where every
//! outcome must be "correct result" or "typed error" — nothing else.
//! See DESIGN.md §10.

use secyan_core::{secure_yannakakis, Session};
use secyan_crypto::TweakHasher;
use secyan_testkit::{
    oracle, run_secure, run_secure_tcp_proxied, run_secure_with_faults, Instance,
};
use secyan_transport::{
    tcp_pair_from_streams, try_run_protocol_on, try_run_protocol_with_faults, FaultKind, FaultPlan,
    ProtocolError, Role, TcpFault, TcpFaultKind, TcpFaultProxy,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fixed instance the fault tests perturb: small enough to rerun
/// dozens of times, large enough that the protocol has a few thousand
/// messages to aim faults at.
fn victim() -> Instance {
    Instance::generate(1)
}

/// Per-direction *wire frame* counts of a clean run, for placing faults
/// within the actual frame horizon. Faults index frames, and message
/// coalescing makes frames far scarcer than logical messages.
fn horizons(inst: &Instance) -> (u64, u64) {
    let clean = run_secure(inst);
    (
        clean.stats.frames_alice_to_bob,
        clean.stats.frames_bob_to_alice,
    )
}

/// Assert the outcome of a faulted run is a typed error (any variant:
/// the injected fault may surface directly at one party and cascade to
/// the other as a peer disconnect — whichever party fails first wins).
fn assert_typed_failure(inst: &Instance, plan: FaultPlan, what: &str) {
    match run_secure_with_faults(inst, &plan) {
        Err(e) => {
            // Displaying the error must work (it feeds operator logs).
            let _ = e.to_string();
        }
        Ok(_) => panic!("{what}: protocol succeeded despite the injected fault"),
    }
}

#[test]
fn truncated_message_yields_typed_error_at_every_phase() {
    let inst = victim();
    let (a2b, b2a) = horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        // First message (OT bootstrap), mid-protocol, and near the end.
        for index in [0, horizon / 2, horizon.saturating_sub(2)] {
            assert_typed_failure(
                &inst,
                FaultPlan::single(dir, index, FaultKind::Truncate),
                &format!("truncate {dir:?} message {index}"),
            );
        }
    }
}

#[test]
fn split_write_yields_typed_error() {
    let inst = victim();
    let (a2b, b2a) = horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        for index in [1, horizon / 3] {
            assert_typed_failure(
                &inst,
                FaultPlan::single(dir, index, FaultKind::SplitWrite),
                &format!("split-write {dir:?} message {index}"),
            );
        }
    }
}

#[test]
fn peer_disconnect_yields_typed_error_not_a_hang() {
    let inst = victim();
    let (a2b, b2a) = horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        for index in [0, horizon / 2] {
            assert_typed_failure(
                &inst,
                FaultPlan::single(dir, index, FaultKind::Disconnect),
                &format!("disconnect {dir:?} after message {index}"),
            );
        }
    }
}

/// Reordering only bites when the sender emits two frames back-to-back
/// (otherwise the relay's flush timeout degrades it to in-order
/// delivery). Coalescing makes same-direction wire bursts rare by
/// design — a party flushes when it is about to block on its peer — so a
/// reorder aimed at a coalesced run must *either* surface typed (a burst
/// existed at that index) or degrade to in-order delivery and a correct
/// result. Never a hang, never a wrong answer.
#[test]
fn reordered_frames_never_corrupt_or_hang() {
    let inst = victim();
    let expected = oracle(&inst);
    let (a2b, b2a) = horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        for index in [0, horizon / 3, horizon / 2, horizon.saturating_sub(2)] {
            match run_secure_with_faults(&inst, &FaultPlan::single(dir, index, FaultKind::Reorder))
            {
                Ok((rows, _)) => assert_eq!(
                    rows, expected,
                    "reorder {dir:?} frame {index} degraded to a WRONG result"
                ),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }
}

/// A genuine same-direction frame burst (explicit `flush()` between two
/// sends) through the full runner + relay: the reorder must be *detected*
/// as a typed sequence error, proving coalescing has not weakened the
/// wire-ordering check.
#[test]
fn reordered_burst_yields_typed_error() {
    use secyan_transport::{Channel, ReadExt, WriteExt};
    let plan = FaultPlan::single(Role::Alice, 0, FaultKind::Reorder);
    let outcome = try_run_protocol_with_faults(
        &plan,
        |ch: &mut Channel| {
            ch.send_u64(1);
            ch.flush();
            ch.send_u64(2);
            ch.flush();
            ch.recv_u64()
        },
        |ch: &mut Channel| {
            let a = ch.recv_u64();
            let b = ch.recv_u64();
            ch.send_u64(a + b);
            0u64
        },
    );
    assert!(
        matches!(outcome, Err(ProtocolError::Transport(_))),
        "reordered burst must surface typed, got {outcome:?}"
    );
}

/// Seed-driven sweep: random fault plans over the real frame horizon.
/// Every outcome must be either the correct result (the fault degraded
/// harmlessly — e.g. a reorder outside a burst) or a typed error. A hang
/// fails via the test harness; a panic would fail the test itself.
#[test]
fn seeded_fault_sweep_is_always_typed_or_correct() {
    let inst = victim();
    let expected = oracle(&inst);
    let (a2b, b2a) = horizons(&inst);
    let horizon = a2b.max(b2a);
    let mut failures = 0;
    for seed in 0..24 {
        match run_secure_with_faults(&inst, &FaultPlan::from_seed(seed, horizon)) {
            Ok((rows, _)) => assert_eq!(
                rows,
                expected,
                "faulted run (fault seed {seed}) succeeded with a wrong result on {}",
                inst.describe()
            ),
            Err(e) => {
                let _ = e.to_string();
                failures += 1;
            }
        }
    }
    // The sweep is only meaningful if a healthy share of plans actually
    // disrupt the run (truncate/split/disconnect within the horizon
    // always should).
    assert!(
        failures >= 8,
        "only {failures}/24 seeded fault plans disrupted the protocol"
    );
}

/// An unfaulted run through the fault harness is transparent: same
/// result as the oracle, `Ok` outcome.
#[test]
fn empty_fault_plan_is_transparent() {
    let inst = victim();
    let (rows, stats) = run_secure_with_faults(&inst, &FaultPlan::none())
        .expect("no faults injected, protocol must succeed");
    assert_eq!(rows, oracle(&inst));
    assert!(stats.messages > 0);
}

/// Guard object standing in for any secret state a party holds on its
/// stack: its destructor must run when the protocol dies with a typed
/// error, because that is the exact mechanism (`Drop`) the
/// `secyan-crypto::Secret` zeroize-on-drop wrappers rely on.
struct ZeroizeCanary(Arc<AtomicBool>);

impl Drop for ZeroizeCanary {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// Secrets are still dropped (and therefore zeroized) on the error path:
/// a canary held across `secure_yannakakis` by each party must have its
/// destructor run even when a mid-protocol disconnect kills the run.
#[test]
fn secrets_are_dropped_on_the_error_path() {
    let inst = victim();
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let alice_dropped = Arc::new(AtomicBool::new(false));
    let bob_dropped = Arc::new(AtomicBool::new(false));
    let (ac, bc) = (alice_dropped.clone(), bob_dropped.clone());
    let plan = FaultPlan::single(Role::Alice, 4, FaultKind::Disconnect);
    let outcome = try_run_protocol_with_faults(
        &plan,
        move |ch| {
            let canary = ZeroizeCanary(ac);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), 11);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice);
            drop(canary);
        },
        move |ch| {
            let canary = ZeroizeCanary(bc);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), 12);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
            drop(canary);
        },
    );
    assert!(
        matches!(outcome, Err(ProtocolError::Transport(_))),
        "disconnect must surface as a typed transport error, got {outcome:?}"
    );
    assert!(
        alice_dropped.load(Ordering::SeqCst),
        "alice's secret state was leaked (not dropped) on the error path"
    );
    assert!(
        bob_dropped.load(Ordering::SeqCst),
        "bob's secret state was leaked (not dropped) on the error path"
    );
}

// ---------------------------------------------------------------------------
// The same fault battery over a real TCP socket, injected byte-exactly by
// the `TcpFaultProxy` man-in-the-middle instead of the mpsc relay.
// ---------------------------------------------------------------------------

/// Per-direction *wire byte* horizons of a clean run: the TCP proxy
/// triggers at byte offsets, and each direction's socket carries the
/// logical payload plus an 8-byte header per frame and a 4-byte
/// sub-header per coalesced message.
fn wire_horizons(inst: &Instance) -> (u64, u64) {
    let s = run_secure(inst).stats;
    (
        s.bytes_alice_to_bob + 8 * s.frames_alice_to_bob + 4 * s.messages_alice_to_bob,
        s.bytes_bob_to_alice + 8 * s.frames_bob_to_alice + 4 * s.messages_bob_to_alice,
    )
}

/// The per-run I/O deadline for faulted TCP runs: long enough for the
/// clean protocol (sub-second on loopback), short enough that a stalled
/// wire fails the run quickly instead of the test harness.
const TCP_FAULT_TIMEOUT: Duration = Duration::from_secs(2);

/// A write truncated mid-frame on the wire — early in the bootstrap,
/// mid-protocol, and just before the end — surfaces as a typed error on
/// both endpoints, never a hang.
#[test]
fn tcp_truncation_yields_typed_error_at_every_phase() {
    let inst = victim();
    let (a2b, b2a) = wire_horizons(&inst);
    for (dir, horizon) in [(Role::Alice, a2b), (Role::Bob, b2a)] {
        // Offset 12 lands inside the first frame's payload (after its
        // 8-byte header), so the receiver sees a short frame, not EOF@0.
        for offset in [12, horizon / 2, horizon - 16] {
            match run_secure_tcp_proxied(
                &inst,
                Some(TcpFault {
                    dir,
                    after_bytes: offset,
                    kind: TcpFaultKind::Truncate,
                }),
                TCP_FAULT_TIMEOUT,
            ) {
                Err(e) => {
                    let _ = e.to_string();
                }
                Ok(_) => panic!(
                    "truncating {dir:?}'s wire at byte {offset} did not \
                     disrupt the TCP run"
                ),
            }
        }
    }
}

/// Split writes are *benign* on a real socket: the kernel reassembles the
/// stream and the pipe's exact-read loops span arbitrary write boundaries,
/// so a wire chopped into 3-byte delayed pieces must still produce the
/// correct result. (The mpsc relay had to model a split as an error; TCP
/// is exactly the transport where it is not one.)
#[test]
fn tcp_split_writes_are_benign() {
    let inst = victim();
    let expected = oracle(&inst);
    let (a2b, b2a) = wire_horizons(&inst);
    // Trigger near the end of each stream so the splitting (deliberately
    // slow: tiny chunks with sleeps) covers the tail, not megabytes.
    for (dir, offset) in [
        (Role::Alice, a2b.saturating_sub(600)),
        (Role::Bob, b2a.saturating_sub(600)),
    ] {
        let (rows, _) = run_secure_tcp_proxied(
            &inst,
            Some(TcpFault {
                dir,
                after_bytes: offset,
                kind: TcpFaultKind::SplitWrite,
            }),
            secyan_transport::DEFAULT_IO_TIMEOUT,
        )
        .unwrap_or_else(|e| {
            panic!("split writes on {dir:?}'s wire at byte {offset} must be benign over TCP: {e}")
        });
        assert_eq!(rows, expected, "split writes corrupted the result");
    }
}

/// A stalled wire — the proxy swallows bytes so the sender never blocks
/// but the receiver starves — must fire the receiver's I/O deadline as a
/// typed error within bounded time. This fault class only a real socket
/// can express: the in-process relay has no notion of time.
#[test]
fn tcp_stall_yields_typed_timeout_within_deadline() {
    let inst = victim();
    let (a2b, _) = wire_horizons(&inst);
    let started = Instant::now();
    let outcome = run_secure_tcp_proxied(
        &inst,
        Some(TcpFault {
            dir: Role::Alice,
            after_bytes: a2b / 3,
            kind: TcpFaultKind::Stall,
        }),
        TCP_FAULT_TIMEOUT,
    );
    let elapsed = started.elapsed();
    assert!(
        matches!(outcome, Err(ProtocolError::Transport(_))),
        "stalled wire must surface as a typed transport error, got {outcome:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "stall took {elapsed:?} to surface — the I/O deadline did not fire"
    );
}

/// A mid-frame connection loss (both directions torn down at once) at the
/// very start and mid-protocol: typed on both endpoints.
#[test]
fn tcp_disconnect_yields_typed_error_not_a_hang() {
    let inst = victim();
    let (a2b, _) = wire_horizons(&inst);
    for offset in [0, a2b / 2] {
        match run_secure_tcp_proxied(
            &inst,
            Some(TcpFault {
                dir: Role::Alice,
                after_bytes: offset,
                kind: TcpFaultKind::Disconnect,
            }),
            TCP_FAULT_TIMEOUT,
        ) {
            Err(e) => {
                let _ = e.to_string();
            }
            Ok(_) => panic!("disconnect at wire byte {offset} did not disrupt the TCP run"),
        }
    }
}

/// An unfaulted run through the TCP proxy is transparent.
#[test]
fn tcp_transparent_proxy_is_clean() {
    let inst = victim();
    let (rows, stats) = run_secure_tcp_proxied(&inst, None, secyan_transport::DEFAULT_IO_TIMEOUT)
        .expect("no fault injected, TCP run must succeed");
    assert_eq!(rows, oracle(&inst));
    assert!(stats.messages > 0);
}

/// Secrets are dropped (zeroized) on the error path when the transport is
/// a real socket: a canary held across `secure_yannakakis` on each
/// endpoint must have its destructor run when a mid-protocol TCP
/// disconnect kills the run.
#[test]
fn tcp_secrets_are_dropped_on_the_error_path() {
    let inst = victim();
    let query = inst.query();
    let (qa, qb) = (query.clone(), query);
    let ra = inst.party_relations(Role::Alice);
    let rb = inst.party_relations(Role::Bob);
    let ring = inst.ring_ctx();
    let (a2b, _) = wire_horizons(&inst);
    let alice_dropped = Arc::new(AtomicBool::new(false));
    let bob_dropped = Arc::new(AtomicBool::new(false));
    let (ac, bc) = (alice_dropped.clone(), bob_dropped.clone());

    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("loopback listener");
    let upstream = listener.local_addr().expect("listener addr");
    let proxy = TcpFaultProxy::spawn(
        upstream,
        Some(TcpFault {
            dir: Role::Alice,
            after_bytes: a2b / 2,
            kind: TcpFaultKind::Disconnect,
        }),
    )
    .expect("fault proxy");
    let alice_stream = std::net::TcpStream::connect(proxy.addr()).expect("connect via proxy");
    let (bob_stream, _) = listener.accept().expect("accept");
    let (mut ca, mut cb) = tcp_pair_from_streams(alice_stream, bob_stream).expect("TCP pair");
    ca.set_io_timeout(Some(TCP_FAULT_TIMEOUT));
    cb.set_io_timeout(Some(TCP_FAULT_TIMEOUT));
    let outcome = try_run_protocol_on(
        (ca, cb),
        move |ch| {
            let canary = ZeroizeCanary(ac);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), 11);
            secure_yannakakis(&mut sess, &qa, &ra, Role::Alice);
            drop(canary);
        },
        move |ch| {
            let canary = ZeroizeCanary(bc);
            let mut sess = Session::new(ch, ring, TweakHasher::default(), 12);
            secure_yannakakis(&mut sess, &qb, &rb, Role::Alice);
            drop(canary);
        },
    );
    drop(proxy);
    assert!(
        matches!(outcome, Err(ProtocolError::Transport(_))),
        "TCP disconnect must surface as a typed transport error, got {outcome:?}"
    );
    assert!(
        alice_dropped.load(Ordering::SeqCst),
        "alice's secret state was leaked (not dropped) on the TCP error path"
    );
    assert!(
        bob_dropped.load(Ordering::SeqCst),
        "bob's secret state was leaked (not dropped) on the TCP error path"
    );
}
