//! Golden round-count regression tests for the super-round transport.
//!
//! Two layers of protection:
//!
//! * **Golden counts** — for fixed instance shapes, the online/offline
//!   super-round counters are pinned exactly. Round counts are a function
//!   of the public query shape only (the protocol is oblivious), so these
//!   goldens are stable across seeds and machines; any drift means the
//!   protocol's communication structure changed and the BENCH numbers and
//!   DESIGN.md §14 need re-recording.
//! * **Coalescing differential** — the same instance runs with message
//!   coalescing on (default) and off (`run_secure_uncoalesced`, one wire
//!   frame per staged message). Coalescing must change *wire framing
//!   only*: results, logical transcripts, and every stage-time meter are
//!   byte-identical; only the frame counters shrink.

use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_testkit::{
    run_secure, run_secure_phase_split, run_secure_phase_split_tcp, run_secure_tcp,
    run_secure_tcp_eager, run_secure_uncoalesced, AggKind, Instance, SecureRun,
};
use secyan_transport::Role;

/// The ISSUE's acceptance bound for the benchmark chain3 online phase
/// (3x down from the 48-round pre-coalescing baseline).
const CHAIN3_ONLINE_SUPER_ROUND_BOUND: u64 = 16;

/// The measured dependency floor of the current operator pipeline: every
/// adjacent frame pair in the chain3 online trace is separated by a real
/// data dependency (OPPRF hints -> GC inputs -> OT corrections -> masked
/// pads -> permutation shares; see DESIGN.md §14 for the frame-by-frame
/// decode). Going lower requires restructuring an operator, not better
/// batching — so the golden pins the floor exactly.
const CHAIN3_ONLINE_SUPER_ROUNDS: u64 = 16;
const CHAIN3_OFFLINE_SUPER_ROUNDS: u64 = 11;

/// The benchmark chain3 instance (mirrors `secyan-bench`'s shape: three
/// relations of 24/48/24 rows, alternating ownership, scalar SUM).
fn chain3_bench_instance() -> Instance {
    let ring = secyan_crypto::RingCtx::new(64);
    let nat = NaturalRing(ring);
    let strings = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
    let (n1, n2, n3) = (24u64, 48u64, 24u64);
    let relations = vec![
        Relation::from_rows(
            nat,
            strings(&["a"]),
            (0..n1).map(|i| (vec![i], i % 7 + 1)).collect(),
        ),
        Relation::from_rows(
            nat,
            strings(&["a", "b"]),
            (0..n2).map(|i| (vec![i % n1, i % 31], i % 5 + 1)).collect(),
        ),
        Relation::from_rows(
            nat,
            strings(&["b"]),
            (0..n3).map(|i| (vec![i % 31], i % 3 + 1)).collect(),
        ),
    ];
    Instance {
        seed: 42,
        ell: 64,
        agg: AggKind::Sum,
        schemas: vec![strings(&["a"]), strings(&["a", "b"]), strings(&["b"])],
        owners: vec![Role::Alice, Role::Bob, Role::Alice],
        tree: JoinTree::chain(3),
        output: Vec::new(),
        relations,
    }
}

#[test]
fn chain3_online_super_rounds_golden() {
    let run = run_secure_phase_split(&chain3_bench_instance(), None);
    assert!(
        run.stats.online_super_rounds <= CHAIN3_ONLINE_SUPER_ROUND_BOUND,
        "chain3 online phase regressed past the acceptance bound: \
         {} super-rounds (bound {CHAIN3_ONLINE_SUPER_ROUND_BOUND})",
        run.stats.online_super_rounds,
    );
    assert_eq!(
        run.stats.online_super_rounds, CHAIN3_ONLINE_SUPER_ROUNDS,
        "chain3 online super-round count drifted — re-derive the frame \
         dependency chain in DESIGN.md §14 and re-record BENCH_online.json",
    );
    assert_eq!(
        run.stats.offline_super_rounds, CHAIN3_OFFLINE_SUPER_ROUNDS,
        "chain3 offline super-round count drifted",
    );
}

/// Golden total super-round counts per generator family. Round structure
/// is public-shape-determined, so these only move when the protocol's
/// communication pattern changes.
#[test]
fn family_super_round_goldens() {
    let families = [
        ("chain(0)", Instance::generate_chain(0)),
        ("chain(1)", Instance::generate_chain(1)),
        ("random(0)", Instance::generate(0)),
        ("random(3)", Instance::generate(3)),
    ];
    let actual: Vec<u64> = families
        .iter()
        .map(|(_, inst)| run_secure(inst).stats.super_rounds)
        .collect();
    let golden: Vec<u64> = vec![9, 19, 25, 25];
    assert_eq!(
        actual,
        golden,
        "per-family super-round goldens drifted (order: {:?})",
        families.map(|(name, _)| name),
    );
}

fn direction_lengths(run: &SecureRun, dir: Role) -> Vec<usize> {
    run.transcript
        .iter()
        .filter(|(r, _)| *r == dir)
        .map(|(_, m)| m.len())
        .collect()
}

fn direction_stream(run: &SecureRun, dir: Role) -> Vec<u8> {
    run.transcript
        .iter()
        .filter(|(r, _)| *r == dir)
        .flat_map(|(_, m)| m.iter().copied())
        .collect()
}

/// Coalescing is a pure wire-framing optimization: with it disabled the
/// same seeds must produce byte-identical results and logical transcripts,
/// one frame per logical message, the same round structure — and strictly
/// more frames.
#[test]
fn coalescing_only_changes_wire_framing() {
    let instances = [
        Instance::generate_chain(0),
        Instance::generate(0),
        Instance::generate(5),
    ];
    for inst in &instances {
        let c = run_secure(inst);
        let u = run_secure_uncoalesced(inst);

        // Same answer, same public output size.
        assert_eq!(c.result, u.result, "{}", inst.describe());
        assert_eq!(c.out_size, u.out_size, "{}", inst.describe());

        // The logical per-direction transcript (stage-time capture) is
        // identical message for message: coalescing never reorders or
        // rewrites payloads within a direction. (The merged two-direction
        // interleaving legitimately differs — whole coalesced runs arrive
        // at once — so it is not compared.)
        for dir in [Role::Alice, Role::Bob] {
            assert_eq!(
                direction_lengths(&c, dir),
                direction_lengths(&u, dir),
                "{dir:?} message boundaries changed on {}",
                inst.describe()
            );
            assert_eq!(
                direction_stream(&c, dir),
                direction_stream(&u, dir),
                "{dir:?} payload bytes changed on {}",
                inst.describe()
            );
        }

        // Stage-time per-direction meters are identical. (The *global*
        // `rounds`/`super_rounds` interleaving meters are not compared:
        // eager mode ships frames mid-computation, so both parties can be
        // staging concurrently and the cross-direction interleaving those
        // meters observe is scheduling-dependent. Per-direction counters
        // and streams are race-free in both modes.)
        assert_eq!(c.stats.bytes_alice_to_bob, u.stats.bytes_alice_to_bob);
        assert_eq!(c.stats.bytes_bob_to_alice, u.stats.bytes_bob_to_alice);
        assert_eq!(c.stats.messages_alice_to_bob, u.stats.messages_alice_to_bob);
        assert_eq!(c.stats.messages_bob_to_alice, u.stats.messages_bob_to_alice);
        assert_eq!(c.stats.online_bytes, u.stats.online_bytes);
        assert_eq!(c.stats.offline_bytes, u.stats.offline_bytes);

        // Coalescing can only merge same-direction frames, so the wire
        // round meter never exceeds the logical one.
        assert!(
            c.stats.super_rounds <= c.stats.rounds,
            "coalesced wire rounds exceed logical rounds ({} > {}) on {}",
            c.stats.super_rounds,
            c.stats.rounds,
            inst.describe()
        );

        // Uncoalesced mode ships exactly one frame per logical message;
        // coalescing must strictly reduce the frame count.
        assert_eq!(u.stats.frames_alice_to_bob, u.stats.messages_alice_to_bob);
        assert_eq!(u.stats.frames_bob_to_alice, u.stats.messages_bob_to_alice);
        assert!(
            c.stats.frames_alice_to_bob < u.stats.frames_alice_to_bob,
            "no Alice->Bob coalescing happened on {}",
            inst.describe()
        );
        assert!(
            c.stats.frames_bob_to_alice < u.stats.frames_bob_to_alice,
            "no Bob->Alice coalescing happened on {}",
            inst.describe()
        );
    }
}

// ---------------------------------------------------------------------------
// The same pins over a real localhost TCP socket. Round structure lives
// entirely above the transport seam, so every golden must hold unchanged.
// ---------------------------------------------------------------------------

/// The chain3 online/offline super-round pins are transport-independent:
/// the phase-split run over TCP reports exactly the in-process goldens,
/// and every other meter matches the in-process phase-split run.
#[test]
fn chain3_super_round_pins_hold_over_tcp() {
    let inst = chain3_bench_instance();
    let tcp = run_secure_phase_split_tcp(&inst);
    assert_eq!(
        tcp.stats.online_super_rounds, CHAIN3_ONLINE_SUPER_ROUNDS,
        "chain3 online super-round count changed when the frames crossed \
         a real socket — the transport seam is leaking into round structure",
    );
    assert_eq!(
        tcp.stats.offline_super_rounds, CHAIN3_OFFLINE_SUPER_ROUNDS,
        "chain3 offline super-round count changed over TCP",
    );
    let mem = run_secure_phase_split(&inst, None);
    assert_eq!(tcp.result, mem.result);
    assert_eq!(
        tcp.stats, mem.stats,
        "phase-split meters diverged between TCP and in-process transports",
    );
}

/// The per-family super-round goldens, re-measured over TCP.
#[test]
fn family_super_round_goldens_hold_over_tcp() {
    let families = [
        ("chain(0)", Instance::generate_chain(0)),
        ("chain(1)", Instance::generate_chain(1)),
        ("random(0)", Instance::generate(0)),
        ("random(3)", Instance::generate(3)),
    ];
    let actual: Vec<u64> = families
        .iter()
        .map(|(_, inst)| run_secure_tcp(inst).stats.super_rounds)
        .collect();
    let golden: Vec<u64> = vec![9, 19, 25, 25];
    assert_eq!(
        actual,
        golden,
        "per-family super-round goldens drifted over TCP (order: {:?})",
        families.map(|(name, _)| name),
    );
}

/// The coalesced-vs-eager differential holds over the socket exactly as
/// it does in process: byte-identical results and logical transcripts,
/// identical stage-time meters, strictly fewer frames when coalescing.
#[test]
fn tcp_coalescing_only_changes_wire_framing() {
    let instances = [Instance::generate_chain(0), Instance::generate(5)];
    for inst in &instances {
        let c = run_secure_tcp(inst);
        let u = run_secure_tcp_eager(inst);

        assert_eq!(c.result, u.result, "{}", inst.describe());
        assert_eq!(c.out_size, u.out_size, "{}", inst.describe());
        for dir in [Role::Alice, Role::Bob] {
            assert_eq!(
                direction_lengths(&c, dir),
                direction_lengths(&u, dir),
                "{dir:?} message boundaries changed on {}",
                inst.describe()
            );
            assert_eq!(
                direction_stream(&c, dir),
                direction_stream(&u, dir),
                "{dir:?} payload bytes changed on {}",
                inst.describe()
            );
        }
        assert_eq!(c.stats.bytes_alice_to_bob, u.stats.bytes_alice_to_bob);
        assert_eq!(c.stats.bytes_bob_to_alice, u.stats.bytes_bob_to_alice);
        assert_eq!(c.stats.messages_alice_to_bob, u.stats.messages_alice_to_bob);
        assert_eq!(c.stats.messages_bob_to_alice, u.stats.messages_bob_to_alice);

        // Eager mode: one TCP frame per logical message; coalescing must
        // strictly reduce the frame count even on a real socket.
        assert_eq!(u.stats.frames_alice_to_bob, u.stats.messages_alice_to_bob);
        assert_eq!(u.stats.frames_bob_to_alice, u.stats.messages_bob_to_alice);
        assert!(
            c.stats.frames_alice_to_bob < u.stats.frames_alice_to_bob,
            "no Alice->Bob coalescing happened over TCP on {}",
            inst.describe()
        );
        assert!(
            c.stats.frames_bob_to_alice < u.stats.frames_bob_to_alice,
            "no Bob->Alice coalescing happened over TCP on {}",
            inst.describe()
        );
    }
}
