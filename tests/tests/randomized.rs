//! Randomized cross-validation: the secure protocol against the plaintext
//! oracle on random acyclic queries and random databases (a fuzz-style
//! integration test; seeds are fixed for reproducibility).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::{naive::naive_join_aggregate, NaturalRing, Relation};
use secyan_transport::{run_protocol, Role};
use std::collections::HashMap;

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Random chain query R0(x0,x1) − R1(x1,x2) − R2(x2,x3) with random data,
/// random owners and a random (valid) output choice.
fn random_trial(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ring = NaturalRing::paper_default();
    let schemas = [
        strings(&["x0", "x1"]),
        strings(&["x1", "x2"]),
        strings(&["x2", "x3"]),
    ];
    let rels: Vec<Relation<NaturalRing>> = schemas
        .iter()
        .map(|schema| {
            let n = rng.gen_range(1..20);
            Relation::from_rows(
                ring,
                schema.clone(),
                (0..n)
                    .map(|_| {
                        (
                            vec![rng.gen_range(0..5u64), rng.gen_range(0..5u64)],
                            rng.gen_range(0..8u64),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    // Output options compatible with some rooting of the chain.
    let out_choices = [
        vec![],
        strings(&["x1"]),
        strings(&["x1", "x2"]),
        strings(&["x2", "x3"]),
        strings(&["x0", "x1"]),
    ];
    let output = out_choices[rng.gen_range(0..out_choices.len())].clone();
    let h = secyan_relation::Hypergraph::new(schemas.to_vec());
    let Some(tree) = secyan_relation::find_free_connex_tree(&h, &output) else {
        return;
    };
    let owners: Vec<Role> = (0..3)
        .map(|_| if rng.gen() { Role::Alice } else { Role::Bob })
        .collect();
    let query =
        secyan_core::SecureQuery::new(schemas.to_vec(), owners.clone(), tree, output.clone());

    let want: HashMap<Vec<u64>, u64> = {
        let res = naive_join_aggregate(&rels, &output);
        // Canonicalize against the secure result's schema order later.
        res.tuples
            .iter()
            .cloned()
            .zip(res.annots.iter().copied())
            .collect()
    };
    let alice_rels: Vec<Option<Relation<NaturalRing>>> = rels
        .iter()
        .zip(&owners)
        .map(|(r, &o)| (o == Role::Alice).then(|| r.clone()))
        .collect();
    let bob_rels: Vec<Option<Relation<NaturalRing>>> = rels
        .iter()
        .zip(&owners)
        .map(|(r, &o)| (o == Role::Bob).then(|| r.clone()))
        .collect();
    let q2 = query.clone();
    let (res, _, _) = run_protocol(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), seed);
            secyan_core::secure_yannakakis(&mut sess, &query, &alice_rels, Role::Alice)
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), seed + 1);
            secyan_core::secure_yannakakis(&mut sess, &q2, &bob_rels, Role::Alice)
        },
    );
    // Compare as maps keyed by the naive result's schema (= output order).
    let naive_schema = if output.is_empty() {
        vec![]
    } else {
        output.clone()
    };
    let pos: Vec<usize> = naive_schema
        .iter()
        .map(|a| res.schema.iter().position(|s| s == a).expect("attr"))
        .collect();
    let mut got: HashMap<Vec<u64>, u64> = HashMap::new();
    for (t, &v) in res.tuples.iter().zip(&res.values) {
        let key: Vec<u64> = pos.iter().map(|&p| t[p]).collect();
        *got.entry(key).or_insert(0) += v;
    }
    // The naive result may contain zero-annotated groups that the secure
    // protocol (correctly) cannot distinguish from dummies.
    let want: HashMap<Vec<u64>, u64> = want.into_iter().filter(|(_, v)| *v != 0).collect();
    assert_eq!(
        got, want,
        "trial seed {seed} output {output:?} owners {owners:?}"
    );
}

#[test]
fn random_chain_queries_trial_batch_a() {
    for seed in 100..106 {
        random_trial(seed);
    }
}

#[test]
fn random_chain_queries_trial_batch_b() {
    for seed in 200..206 {
        random_trial(seed);
    }
}
