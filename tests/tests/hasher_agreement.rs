//! Cross-hasher agreement: the fixed-key AES tweakable hash is a drop-in
//! substitute for the SHA-256 construction. Garbling the same circuit under
//! `TweakHasher::Aes` and `TweakHasher::Sha256` must produce identical
//! cleartext outputs *and* identical transcript shapes — the hash choice
//! changes ciphertext bytes, never message count, length, or direction.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use secyan_circuit::{bits_to_u64, u64_to_bits, Builder, Circuit};
use secyan_crypto::TweakHasher;
use secyan_gc::{evaluate_circuit, garble_circuit, OutputMode};
use secyan_ot::{OtReceiver, OtSender};
use secyan_transport::{run_protocol_recorded, Role};

/// A circuit exercising every gate kind: sum, product, equality, less-than.
fn mixed_circuit(bits: usize) -> Circuit {
    let mut b = Builder::new();
    let x = b.alice_word(bits);
    let y = b.bob_word(bits);
    let sum = b.add_words(&x, &y);
    let prod = b.mul_words(&x, &y);
    let eq = b.eq_words(&x, &y);
    let lt = b.lt_words(&x, &y);
    b.output_word(&sum);
    b.output_word(&prod);
    b.output(eq);
    b.output(lt);
    b.finish()
}

/// Run the two-party GC protocol on `(x, y)` under `hasher`, recording the
/// transcript. Returns (garbler outputs, evaluator outputs, transcript).
fn run_gc(
    x: u64,
    y: u64,
    bits: usize,
    hasher: TweakHasher,
) -> (Vec<bool>, Vec<bool>, Vec<(Role, usize)>) {
    let circ = mixed_circuit(bits);
    let circ2 = circ.clone();
    let xb = u64_to_bits(x, bits);
    let yb = u64_to_bits(y, bits);
    let (a_out, b_out, _) = run_protocol_recorded(
        move |ch| {
            let mut rng = StdRng::seed_from_u64(7001);
            let mut ot = OtSender::setup(ch, &mut rng, hasher);
            let out = garble_circuit(
                ch,
                &circ,
                &xb,
                &mut ot,
                hasher,
                &mut rng,
                OutputMode::RevealBoth,
            )
            .expect("reveal-both returns to garbler");
            (out, ch.transcript_lengths())
        },
        move |ch| {
            let mut rng = StdRng::seed_from_u64(7002);
            let mut ot = OtReceiver::setup(ch, &mut rng, hasher);
            evaluate_circuit(ch, &circ2, &yb, &mut ot, hasher, OutputMode::RevealBoth)
                .expect("reveal-both returns to evaluator")
        },
    );
    let (garbler_out, transcript) = a_out;
    (garbler_out, b_out, transcript)
}

/// Decode the mixed circuit's outputs into (sum, prod, eq, lt).
fn decode(bits: usize, out: &[bool]) -> (u64, u64, bool, bool) {
    (
        bits_to_u64(&out[..bits]),
        bits_to_u64(&out[bits..2 * bits]),
        out[2 * bits],
        out[2 * bits + 1],
    )
}

#[test]
fn aes_and_sha256_garblings_agree() {
    const BITS: usize = 16;
    for (x, y) in [(1234u64, 4321u64), (0, 0), (65535, 1), (40000, 40000)] {
        let (a_sha, b_sha, t_sha) = run_gc(x, y, BITS, TweakHasher::Sha256);
        let (a_aes, b_aes, t_aes) = run_gc(x, y, BITS, TweakHasher::Aes);
        // Identical cleartext outputs, on both sides.
        assert_eq!(a_sha, a_aes, "garbler outputs differ for ({x}, {y})");
        assert_eq!(b_sha, b_aes, "evaluator outputs differ for ({x}, {y})");
        assert_eq!(a_aes, b_aes, "parties disagree for ({x}, {y})");
        // And they are the *right* outputs.
        let mask = (1u64 << BITS) - 1;
        let (sum, prod, eq, lt) = decode(BITS, &a_aes);
        assert_eq!(sum, (x + y) & mask);
        assert_eq!(prod, (x * y) & mask);
        assert_eq!(eq, x == y);
        assert_eq!(lt, x < y);
        // Identical transcript shape: same message count, and every message
        // has the same direction and byte length under either hasher.
        assert_eq!(
            t_sha.len(),
            t_aes.len(),
            "message counts differ for ({x}, {y})"
        );
        for (i, (ms, ma)) in t_sha.iter().zip(&t_aes).enumerate() {
            assert_eq!(ms, ma, "transcript message {i} differs for ({x}, {y})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Property form: for random inputs, Aes and Sha256 garblings agree on
    /// the decoded outputs and on the transcript length sequence.
    #[test]
    fn prop_hashers_agree(x in 0u64..1 << 12, y in 0u64..1 << 12) {
        const BITS: usize = 12;
        let (a_sha, b_sha, t_sha) = run_gc(x, y, BITS, TweakHasher::Sha256);
        let (a_aes, b_aes, t_aes) = run_gc(x, y, BITS, TweakHasher::Aes);
        prop_assert_eq!(&a_sha, &a_aes);
        prop_assert_eq!(&b_sha, &b_aes);
        prop_assert_eq!(t_sha, t_aes);
    }
}
