//! Differential fuzzing: generated join-aggregate instances through all
//! four engines (naive oracle, plaintext Yannakakis, garbled-circuit
//! baseline, full secure protocol), plus the corner-case families the
//! paper's model makes awkward: annotation wrap-around in Z_{2^ℓ},
//! duplicate-heavy COUNT inputs, and obliviousness over *generated* (not
//! handcrafted) queries. The generated-instance thread-count determinism
//! check lives in `parallel_determinism.rs`, whose tests serialize the
//! process-global `par::set_threads` flips.
//!
//! Every failure message carries the instance seed; `Instance::generate(seed)`
//! (or `generate_chain(seed)`) reproduces the exact instance locally. See
//! README's "Running the fuzzer" and DESIGN.md §10.

use secyan_crypto::RingCtx;
use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_testkit::{
    check_instance, oracle, run_secure, run_secure_phase_split, run_secure_phase_split_with_faults,
    run_secure_tcp, scalar_of, AggKind, Instance, SecureRun,
};
use secyan_transport::{FaultKind, FaultPlan, Role};

/// One direction's wire stream: the sender's messages in program order.
/// The *global* interleaving of the two directions is scheduler timing,
/// not protocol content (both parties may send concurrently within a
/// round), so cross-run comparisons are made per direction.
fn direction_stream(run: &SecureRun, dir: Role) -> Vec<&[u8]> {
    run.transcript
        .iter()
        .filter(|(r, _)| *r == dir)
        .map(|(_, m)| m.as_slice())
        .collect()
}

fn direction_lengths(run: &SecureRun, dir: Role) -> Vec<usize> {
    direction_stream(run, dir).iter().map(|m| m.len()).collect()
}

// ---------------------------------------------------------------------------
// The CI sweep: 64 seeded instances, all four engines agreeing.
// ---------------------------------------------------------------------------

/// 48 instances from the general family: random trees over 2–6 relations,
/// SUM and COUNT, ℓ ∈ {32, 64}, skew/empty/dangling/near-wrap corners.
#[test]
fn differential_sweep_general_family() {
    for seed in 0..48 {
        check_instance(&Instance::generate(seed));
    }
}

/// 16 instances from the chain family, shaped so the garbled-circuit
/// baseline always runs — the sweep fails if any instance skipped it.
#[test]
fn differential_sweep_chain_family_exercises_baseline() {
    let mut baseline_runs = 0;
    for seed in 0..16 {
        let d = check_instance(&Instance::generate_chain(seed));
        baseline_runs += usize::from(d.baseline.is_some());
    }
    assert_eq!(
        baseline_runs, 16,
        "every chain-family instance must exercise the circuit baseline"
    );
}

/// The secure engine over a real localhost TCP socket, on a seeded subset
/// of both instance families. For every instance the revealed result must
/// match the plaintext oracle, and — because all staging, coalescing, and
/// metering live above the transport seam — the per-direction transcript
/// must be *byte-identical* to the in-process channel's, with every
/// stage-time communication counter equal.
#[test]
fn differential_sweep_tcp() {
    let instances = (0..8)
        .map(Instance::generate)
        .chain((0..4).map(Instance::generate_chain));
    for inst in instances {
        let expected = oracle(&inst);
        let mem = run_secure(&inst);
        let tcp = run_secure_tcp(&inst);
        assert_eq!(
            tcp.result,
            expected,
            "TCP run diverged from the oracle on {}",
            inst.describe()
        );
        assert_eq!(tcp.result, mem.result, "{}", inst.describe());
        assert_eq!(tcp.out_size, mem.out_size, "{}", inst.describe());
        for dir in [Role::Alice, Role::Bob] {
            assert_eq!(
                direction_stream(&tcp, dir),
                direction_stream(&mem, dir),
                "{dir:?}-side transcript over TCP is not byte-identical \
                 to the in-process channel on {}",
                inst.describe()
            );
        }
        assert_eq!(
            tcp.stats,
            mem.stats,
            "communication meters diverged between TCP and in-process \
             transports on {}",
            inst.describe()
        );
    }
}

// ---------------------------------------------------------------------------
// Offline/online phase split (DESIGN.md §11).
// ---------------------------------------------------------------------------

/// Every generated instance, run as offline-then-online, must produce a
/// result identical to the single-phase run, with the traffic split
/// reported per phase and the bulk of it shifted offline.
#[test]
fn phase_split_sweep_matches_single_phase() {
    for seed in (0..24).chain([1001, 1002]) {
        let inst = Instance::generate(seed);
        let single = run_secure(&inst);
        let split = run_secure_phase_split(&inst, None);
        assert_eq!(
            split.result,
            single.result,
            "phase-split result diverged from single-phase on {}",
            inst.describe()
        );
        assert_eq!(split.out_size, single.out_size);
        assert!(
            split.stats.offline_bytes > 0 && split.stats.online_bytes > 0,
            "both phases must carry tagged traffic on {}",
            inst.describe()
        );
        // The online phase must be strictly cheaper than doing everything
        // at query time: at minimum the session bootstrap and the banked
        // OT extensions moved offline. (It is NOT always below the offline
        // bytes — a full-join instance garbles its data-dependent product
        // tree inline online, which no shape-keyed plan can foresee.)
        assert!(
            split.stats.online_bytes < single.stats.total_bytes(),
            "online phase of {} is no cheaper than single-phase \
             (online {} vs single {})",
            inst.describe(),
            split.stats.online_bytes,
            single.stats.total_bytes()
        );
    }
}

/// The chain family (scalar aggregates, single-survivor reveal path)
/// through the phase split.
#[test]
fn phase_split_chain_family_matches_single_phase() {
    for seed in 0..8 {
        let inst = Instance::generate_chain(seed);
        let single = run_secure(&inst);
        let split = run_secure_phase_split(&inst, None);
        assert_eq!(split.result, single.result, "{}", inst.describe());
    }
}

/// A pool exhausted mid-online — pre-garbled entries consumed, OT banks
/// nearly dry — must degrade to per-step inline fallback on both parties
/// at once, still producing the correct result (slower, never wrong, never
/// hung). Sweeps partial and total exhaustion.
#[test]
fn pool_exhaustion_mid_online_falls_back_correctly() {
    for seed in [1, 5, 9] {
        let inst = Instance::generate(seed);
        let expected = oracle(&inst);
        for (label, shed) in [
            ("one circuit + capped OTs", (1, 64)),
            ("all circuits, empty banks", (usize::MAX >> 1, 0)),
        ] {
            let run = run_secure_phase_split(&inst, Some(shed));
            assert_eq!(
                run.result,
                expected,
                "exhausted pool ({label}) corrupted the result on {}",
                inst.describe()
            );
        }
    }
}

/// Transport faults landing in *either* phase of a split run must surface
/// as typed errors — never hangs, never untyped panics. Early indices hit
/// the offline bootstrap; indices near the horizon hit the online phase.
#[test]
fn phase_split_faults_surface_typed_errors_in_both_phases() {
    let inst = Instance::generate(1);
    let clean = run_secure_phase_split(&inst, None);
    for dir in [Role::Alice, Role::Bob] {
        // This direction's own *wire-frame* horizon — faults index frames,
        // and coalescing makes frames far scarcer than logical messages, so
        // an index past the frame count would never fire.
        let horizon = match dir {
            Role::Alice => clean.stats.frames_alice_to_bob,
            Role::Bob => clean.stats.frames_bob_to_alice,
        };
        for (phase, index) in [
            ("offline", 0),
            ("offline", 4),
            ("online", horizon.saturating_sub(2)),
        ] {
            for kind in [FaultKind::Truncate, FaultKind::Disconnect] {
                let plan = FaultPlan::single(dir, index, kind);
                match run_secure_phase_split_with_faults(&inst, &plan) {
                    Err(e) => {
                        let _ = e.to_string();
                    }
                    Ok(_) => panic!(
                        "{kind:?} on {dir:?} message {index} ({phase} phase) \
                         did not disrupt the split run"
                    ),
                }
            }
        }
    }
}

/// Nightly-style deep run: 1000 instances. Not part of the gating CI job
/// (`cargo test -q -- --ignored differential_deep` runs it on demand).
#[test]
#[ignore = "deep fuzz (~1k secure protocol runs); run explicitly with --ignored"]
fn differential_deep_fuzz() {
    for seed in 1_000..1_900 {
        check_instance(&Instance::generate(seed));
    }
    for seed in 1_000..1_100 {
        check_instance(&Instance::generate_chain(seed));
    }
}

// ---------------------------------------------------------------------------
// Obliviousness over generated families.
// ---------------------------------------------------------------------------

/// Replace every annotation with a different (seed-independent) value,
/// keeping tuples — and therefore every public size and the revealed
/// output support — fixed.
fn mutate_annotations(inst: &Instance) -> Instance {
    let ring = inst.ring_ctx();
    let mut out = inst.clone();
    for rel in &mut out.relations {
        for a in &mut rel.annots {
            // Odd multiplier, NO offset: a bijection on Z_{2^ℓ} that fixes
            // zero. The paper's leakage profile legitimately reveals each
            // row's nonzero support (reveal sizes scale with it), so a
            // transcript-invariance mutation must preserve the zero pattern
            // of every intermediate annotation. Multiplying all inputs by
            // one odd constant does: every monomial at a node has uniform
            // degree d, so each aggregate is scaled by the unit odd^d and
            // no zero is created or destroyed anywhere in the tree.
            *a = ring.reduce(a.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
    }
    out
}

/// Apply a bijection to every key value in every tuple. The equality
/// structure (which tuples join with which) is preserved exactly, so the
/// instance is isomorphic — but no key byte on the wire may betray the
/// difference.
fn relabel_keys(inst: &Instance) -> Instance {
    let mut out = inst.clone();
    for rel in &mut out.relations {
        for t in &mut rel.tuples {
            for v in t.iter_mut() {
                // Odd multiplier + offset: a bijection on u64 (×2 would
                // collapse pairs of labels and change the join structure).
                *v = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x5EED);
            }
        }
    }
    out
}

/// The transcript (per-message sender and length) must be identical
/// across instances of equal public shape that differ only in private
/// values: annotation contents and key labels. This extends the
/// handcrafted checks in `obliviousness.rs` to generated queries.
#[test]
fn generated_transcripts_depend_only_on_public_shape() {
    for seed in [0, 3, 7, 11, 19] {
        let base = Instance::generate(seed);
        let base_run = run_secure(&base);
        for (label, variant) in [
            ("annotation values", mutate_annotations(&base)),
            ("key labels", relabel_keys(&base)),
        ] {
            let run = run_secure(&variant);
            for dir in [Role::Alice, Role::Bob] {
                assert_eq!(
                    direction_lengths(&run, dir),
                    direction_lengths(&base_run, dir),
                    "{dir:?}-side transcript of {} changed when only {label} changed",
                    base.describe()
                );
            }
            assert_eq!(
                (run.stats.bytes_alice_to_bob, run.stats.bytes_bob_to_alice),
                (
                    base_run.stats.bytes_alice_to_bob,
                    base_run.stats.bytes_bob_to_alice
                ),
                "byte counters of {} changed when only {label} changed",
                base.describe()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Annotation overflow: exact wrap-around semantics in Z_{2^ℓ}.
// ---------------------------------------------------------------------------

/// A two-relation unary join `R1(a) ⋈ R2(a)` with a scalar SUM output:
/// the smallest query whose result is a product of two chosen
/// annotations, so wrap-around can be pinned to exact values.
fn product_instance(seed: u64, ell: u32, annot1: u64, annot2: u64) -> Instance {
    let ring = RingCtx::new(ell);
    let schemas = vec![vec!["a".to_string()], vec!["a".to_string()]];
    let relations = vec![
        Relation::from_rows(
            NaturalRing(ring),
            schemas[0].clone(),
            vec![(vec![1], ring.reduce(annot1))],
        ),
        Relation::from_rows(
            NaturalRing(ring),
            schemas[1].clone(),
            vec![(vec![1], ring.reduce(annot2))],
        ),
    ];
    Instance {
        seed,
        ell,
        agg: AggKind::Sum,
        schemas,
        owners: vec![Role::Alice, Role::Bob],
        tree: JoinTree::chain(2),
        output: Vec::new(),
        relations,
    }
}

/// SUM wraps *exactly* at 2^32: a product that overflows to a nonzero
/// residue, and one that overflows to exactly zero (the aggregate
/// vanishes — indistinguishable from an empty join).
#[test]
fn sum_wraps_exactly_at_ell_32() {
    // (2^32 - 1) * 7 ≡ 2^32 - 7 (mod 2^32)
    let d = check_instance(&product_instance(90_001, 32, (1u64 << 32) - 1, 7));
    assert_eq!(scalar_of(&d.expected), (1u64 << 32) - 7);

    // 2^31 * 2 ≡ 0 (mod 2^32): the whole aggregate wraps to nothing.
    let d = check_instance(&product_instance(90_002, 32, 1u64 << 31, 2));
    assert_eq!(scalar_of(&d.expected), 0);
}

/// The same two shapes at ℓ = 64, where the ring is the full u64 and the
/// wrap is native wrapping arithmetic.
#[test]
fn sum_wraps_exactly_at_ell_64() {
    // u64::MAX * 3 ≡ 2^64 - 3 (mod 2^64)
    let d = check_instance(&product_instance(90_003, 64, u64::MAX, 3));
    assert_eq!(scalar_of(&d.expected), u64::MAX - 2);

    // 2^63 * 2 ≡ 0 (mod 2^64)
    let d = check_instance(&product_instance(90_004, 64, 1u64 << 63, 2));
    assert_eq!(scalar_of(&d.expected), 0);
}

/// A grouped SUM whose per-group totals straddle the ℓ = 32 boundary:
/// one group wraps to zero (and must vanish from the canonical output),
/// one wraps to a nonzero residue, one stays below the modulus.
#[test]
fn grouped_sum_wraps_per_group_at_ell_32() {
    let ring = RingCtx::new(32);
    let m = 1u64 << 32;
    let schemas = vec![
        vec!["g".to_string(), "k".to_string()],
        vec!["k".to_string()],
    ];
    let r1 = Relation::from_rows(
        NaturalRing(ring),
        schemas[0].clone(),
        vec![
            // group 1: (2^31) + (2^31) ≡ 0 — must disappear.
            (vec![1, 10], ring.reduce(m / 2)),
            (vec![1, 11], ring.reduce(m / 2)),
            // group 2: (2^32 - 1) + 4 ≡ 3.
            (vec![2, 10], ring.reduce(m - 1)),
            (vec![2, 11], 4),
            // group 3: no wrap.
            (vec![3, 10], 5),
        ],
    );
    let r2 = Relation::from_rows(
        NaturalRing(ring),
        schemas[1].clone(),
        vec![(vec![10], 1), (vec![11], 1)],
    );
    let h = secyan_relation::Hypergraph::new(schemas.clone());
    let tree = secyan_relation::find_free_connex_tree(&h, &["g".to_string()])
        .expect("chain with group-by on g is free-connex");
    let inst = Instance {
        seed: 90_005,
        ell: 32,
        agg: AggKind::Sum,
        schemas,
        owners: vec![Role::Alice, Role::Bob],
        tree,
        output: vec!["g".to_string()],
        relations: vec![r1, r2],
    };
    let d = check_instance(&inst);
    assert_eq!(d.expected, vec![(vec![2], 3), (vec![3], 5)]);
}

/// COUNT over duplicate-heavy inputs: every annotation is 1, so the
/// result is the multiplicity product — checked against the saturating
/// `CountSemiring` oracle (which cannot wrap mid-aggregation) and pinned
/// to the hand-computed counts.
#[test]
fn count_duplicate_heavy_matches_oracle() {
    let ring = RingCtx::new(32);
    let schemas = vec![
        vec!["g".to_string(), "k".to_string()],
        vec!["k".to_string()],
    ];
    // 12 copies of (g=1, k=10) and 3 of (g=2, k=10); 6 copies of (k=10).
    let mut rows1 = vec![(vec![1, 10], 1); 12];
    rows1.extend(vec![(vec![2, 10], 1); 3]);
    let r1 = Relation::from_rows(NaturalRing(ring), schemas[0].clone(), rows1);
    let r2 = Relation::from_rows(
        NaturalRing(ring),
        schemas[1].clone(),
        vec![(vec![10], 1); 6],
    );
    let h = secyan_relation::Hypergraph::new(schemas.clone());
    let tree = secyan_relation::find_free_connex_tree(&h, &["g".to_string()])
        .expect("chain with group-by on g is free-connex");
    let inst = Instance {
        seed: 90_006,
        ell: 32,
        agg: AggKind::Count,
        schemas,
        owners: vec![Role::Bob, Role::Alice],
        tree,
        output: vec!["g".to_string()],
        relations: vec![r1, r2],
    };
    let d = check_instance(&inst);
    assert_eq!(d.expected, vec![(vec![1], 72), (vec![2], 18)]);
}

/// The generated COUNT family is duplicate-heavy by construction (tiny
/// key domains, larger relations); sweep a handful of those seeds
/// explicitly so a regression in COUNT semantics names this test.
#[test]
fn generated_count_family_matches_oracle() {
    let mut ran = 0;
    let mut seed = 0;
    while ran < 6 {
        let inst = Instance::generate(seed);
        seed += 1;
        if inst.agg == AggKind::Count {
            check_instance(&inst);
            ran += 1;
        }
    }
}
