//! Thread-count determinism: the worker pool must not change a single
//! byte on the wire. Every parallelized hot path (IKNP extension, KKRT,
//! OPPRF hints, levelized garbling, layered OSN) partitions work on
//! public sizes and writes results into pre-allocated slots in canonical
//! order, so the transcript of a full protocol run — and the outputs —
//! are required to be identical at any `SECYAN_THREADS` setting. These
//! tests run the same protocol at 1 and 4 threads over a recording
//! channel and compare full payload bytes, not just lengths.

use rand::SeedableRng;
use secyan_core::par;
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_ot::{OtReceiver, OtSender};
use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_transport::{run_protocol_captured, Role};
use std::sync::Mutex;

/// `set_threads` is process-global; serialize the tests that flip it so a
/// concurrently running test cannot observe a half-configured pool. (The
/// determinism property itself would mask such a race — which is exactly
/// why the lock is needed to keep a *failure* diagnosable.)
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(t: usize, f: impl FnOnce() -> T) -> T {
    par::set_threads(t);
    let out = f();
    par::set_threads(0);
    out
}

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

type Transcript = Vec<(Role, Vec<u8>)>;

/// Run the Example-1.1-shaped chain query (circuit PSI + GC reductions +
/// OSN underneath) and return the receiver's result plus the full
/// transcript bytes.
fn run_query() -> (Vec<Vec<u64>>, Vec<u64>, usize, Transcript) {
    let ring = NaturalRing::paper_default();
    let n = 48u64;
    let r1 = Relation::from_rows(
        ring,
        strings(&["person"]),
        (0..n).map(|i| (vec![i], i + 1)).collect(),
    );
    let r2 = Relation::from_rows(
        ring,
        strings(&["person", "disease"]),
        (0..n).map(|i| (vec![i, i % 7], 2 * i + 1)).collect(),
    );
    let r3 = Relation::from_rows(
        ring,
        strings(&["disease", "class"]),
        (0..7u64).map(|d| (vec![d, d % 3], 1)).collect(),
    );
    let query = secyan_core::SecureQuery::new(
        vec![
            strings(&["person"]),
            strings(&["person", "disease"]),
            strings(&["disease", "class"]),
        ],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        strings(&["class"]),
    );
    let q2 = query.clone();
    let (result, _, _, handle) = run_protocol_captured(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 1);
            secyan_core::secure_yannakakis(
                &mut sess,
                &query,
                &[Some(r1), None, Some(r3)],
                Role::Alice,
            )
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 2);
            secyan_core::secure_yannakakis(&mut sess, &q2, &[None, Some(r2), None], Role::Alice);
        },
    );
    (
        result.tuples,
        result.values,
        result.out_size,
        handle.messages(),
    )
}

#[test]
fn full_query_transcript_is_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap();
    let (tuples_1, values_1, size_1, transcript_1) = with_threads(1, run_query);
    let (tuples_4, values_4, size_4, transcript_4) = with_threads(4, run_query);
    assert_eq!(tuples_1, tuples_4, "result tuples diverged");
    assert_eq!(values_1, values_4, "result values diverged");
    assert_eq!(size_1, size_4, "public output size diverged");
    assert_eq!(
        transcript_1.len(),
        transcript_4.len(),
        "message count diverged: {} vs {}",
        transcript_1.len(),
        transcript_4.len()
    );
    for (i, (m1, m4)) in transcript_1.iter().zip(&transcript_4).enumerate() {
        assert_eq!(m1.0, m4.0, "message {i} direction diverged");
        assert_eq!(m1.1, m4.1, "message {i} payload diverged");
    }
}

/// IKNP random-OT extension at a size crossing the parallel threshold
/// (`OT_PAR_MIN = 4096`): both the coalesced column message and every
/// hashed output must match byte for byte.
fn run_iknp() -> (
    Vec<(secyan_crypto::Block, secyan_crypto::Block)>,
    Vec<secyan_crypto::Block>,
    Transcript,
) {
    const M: usize = 8192;
    let hasher = TweakHasher::default();
    let (pairs, got, _, handle) = run_protocol_captured(
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            let mut ot = OtSender::setup(ch, &mut rng, hasher);
            ot.random(ch, M)
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(22);
            let mut ot = OtReceiver::setup(ch, &mut rng, hasher);
            let choices: Vec<bool> = (0..M).map(|i| i % 3 == 0).collect();
            ot.random(ch, &choices)
        },
    );
    (pairs, got, handle.messages())
}

#[test]
fn iknp_extension_transcript_is_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap();
    let (pairs_1, got_1, transcript_1) = with_threads(1, run_iknp);
    let (pairs_4, got_4, transcript_4) = with_threads(4, run_iknp);
    assert_eq!(pairs_1, pairs_4, "sender pairs diverged");
    assert_eq!(got_1, got_4, "receiver outputs diverged");
    assert_eq!(transcript_1, transcript_4, "IKNP transcript diverged");
}

/// OPPRF at a bin count crossing every KKRT/OPPRF parallel threshold:
/// the hint polynomials (and therefore the wire bytes) must not depend
/// on how bins were scheduled across workers.
fn run_opprf() -> (Vec<u64>, Transcript) {
    const BINS: usize = 2048;
    const DEGREE: usize = 8;
    let hasher = TweakHasher::default();
    let programs: Vec<Vec<(u64, u64)>> = (0..BINS as u64)
        .map(|b| {
            (0..4)
                .map(|i| (b * 10 + i, b.wrapping_mul(31) ^ i))
                .collect()
        })
        .collect();
    let queries: Vec<secyan_psi::opprf::PsiItem> = (0..BINS as u64)
        .map(|b| secyan_psi::opprf::PsiItem::Real(b * 10))
        .collect();
    let ((), out, _, handle) = run_protocol_captured(
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(31);
            let mut kkrt = secyan_ot::KkrtSender::setup(ch, &mut rng, hasher);
            secyan_psi::opprf::opprf_program(ch, &mut kkrt, &programs, DEGREE, &mut rng);
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(32);
            let mut kkrt = secyan_ot::KkrtReceiver::setup(ch, &mut rng, hasher);
            secyan_psi::opprf::opprf_evaluate(ch, &mut kkrt, &queries, DEGREE)
        },
    );
    (out, handle.messages())
}

#[test]
fn opprf_transcript_is_thread_count_invariant() {
    let _guard = THREAD_LOCK.lock().unwrap();
    let (out_1, transcript_1) = with_threads(1, run_opprf);
    let (out_4, transcript_4) = with_threads(4, run_opprf);
    assert_eq!(out_1, out_4, "OPPRF outputs diverged");
    assert_eq!(transcript_1, transcript_4, "OPPRF transcript diverged");
    // The programmed points must still hit their targets.
    for (b, &o) in out_1.iter().enumerate() {
        assert_eq!(o, (b as u64).wrapping_mul(31), "bin {b} missed its target");
    }
}

/// One *generated* differential instance (secyan-testkit) at 1 and 4
/// threads: results and per-direction transcript bytes must be
/// identical, composing the worker-pool determinism guarantee with the
/// fuzzer's query families (DESIGN.md §10). Per direction because the
/// global interleaving of the two directions is scheduler timing, not
/// protocol content.
#[test]
fn generated_instance_is_thread_count_deterministic() {
    use secyan_testkit::{run_secure, Instance, SecureRun};

    fn direction_stream(run: &SecureRun, dir: Role) -> Vec<&[u8]> {
        run.transcript
            .iter()
            .filter(|(r, _)| *r == dir)
            .map(|(_, m)| m.as_slice())
            .collect()
    }

    let _guard = THREAD_LOCK.lock().unwrap();
    let inst = Instance::generate(7);
    let one = with_threads(1, || run_secure(&inst));
    let four = with_threads(4, || run_secure(&inst));
    assert_eq!(one.result, four.result, "{}", inst.describe());
    assert_eq!(one.out_size, four.out_size, "{}", inst.describe());
    for dir in [Role::Alice, Role::Bob] {
        assert_eq!(
            direction_stream(&one, dir),
            direction_stream(&four, dir),
            "{dir:?}-side transcript bytes of {} differ between 1 and 4 threads",
            inst.describe()
        );
    }
}
