//! Cross-crate integration tests: the full secure Yannakakis stack against
//! the plaintext oracle, including the heavyweight Q9 decomposition and
//! adversarial data shapes.

use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::{naive::naive_join_aggregate, JoinTree, NaturalRing, Relation};
use secyan_tpch::queries::{canonical, run_plaintext_instance, run_secure_instance, PaperQuery};
use secyan_tpch::{Database, Scale};
use secyan_transport::{run_protocol, Role};

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

fn run_paper_query(q: PaperQuery, mb: f64, seed: u64) {
    let ring = NaturalRing::paper_default();
    let db = Database::generate(Scale::mb(mb), seed);
    let spec = q.build(&db, ring);
    let want = canonical(run_plaintext_instance(&spec, ring));
    let (sa, sb) = (spec.clone(), spec.clone());
    let (got, _, _) = run_protocol(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 1);
            run_secure_instance(&mut sess, &sa)
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 2);
            run_secure_instance(&mut sess, &sb)
        },
    );
    assert_eq!(canonical(got), want, "{} at {mb} MB", q.name());
}

#[test]
fn q9_full_decomposition_secure() {
    // 50 secure Yannakakis instances (25 nations × two sums) plus the
    // on-shares difference — the paper's heaviest query.
    run_paper_query(PaperQuery::Q9, 0.01, 3);
}

#[test]
fn all_five_queries_at_smoke_scale() {
    for q in PaperQuery::all() {
        let mb = match q {
            PaperQuery::Q9 => 0.005,
            _ => 0.03,
        };
        run_paper_query(q, mb, 17);
    }
}

#[test]
fn larger_q3_with_different_seeds() {
    for seed in [1, 2] {
        run_paper_query(PaperQuery::Q3, 0.08, seed);
    }
}

/// A query where one party owns everything: the same-party operator
/// variants carry the whole plan.
#[test]
fn single_owner_query() {
    let ring = NaturalRing::paper_default();
    let r1 = Relation::from_rows(
        ring,
        strings(&["a", "b"]),
        vec![(vec![1, 5], 3), (vec![2, 6], 4), (vec![3, 5], 5)],
    );
    let r2 = Relation::from_rows(
        ring,
        strings(&["b", "c"]),
        vec![(vec![5, 7], 10), (vec![6, 8], 20)],
    );
    let query = secyan_core::SecureQuery::new(
        vec![strings(&["a", "b"]), strings(&["b", "c"])],
        vec![Role::Bob, Role::Bob],
        JoinTree::chain(2),
        strings(&["c"]),
    );
    let want = naive_join_aggregate(&[r1.clone(), r2.clone()], &strings(&["c"]));
    let q2 = query.clone();
    let (res, _, _) = run_protocol(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 5);
            secyan_core::secure_yannakakis(&mut sess, &query, &[None, None], Role::Alice)
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 6);
            secyan_core::secure_yannakakis(&mut sess, &q2, &[Some(r1), Some(r2)], Role::Alice)
        },
    );
    let mut got: Vec<(Vec<u64>, u64)> = res.tuples.into_iter().zip(res.values).collect();
    got.sort();
    assert_eq!(got, want.canonical());
}

/// Empty-result queries terminate cleanly and reveal nothing.
#[test]
fn disjoint_relations_empty_result() {
    let ring = NaturalRing::paper_default();
    let r1 = Relation::from_rows(ring, strings(&["a"]), vec![(vec![1], 2), (vec![2], 3)]);
    let r2 = Relation::from_rows(
        ring,
        strings(&["a", "g"]),
        vec![(vec![8, 1], 5), (vec![9, 2], 6)],
    );
    let query = secyan_core::SecureQuery::new(
        vec![strings(&["a"]), strings(&["a", "g"])],
        vec![Role::Alice, Role::Bob],
        JoinTree::chain(2),
        strings(&["g"]),
    );
    let q2 = query.clone();
    let (res, _, _) = run_protocol(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 7);
            secyan_core::secure_yannakakis(&mut sess, &query, &[Some(r1), None], Role::Alice)
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 8);
            secyan_core::secure_yannakakis(&mut sess, &q2, &[None, Some(r2)], Role::Alice)
        },
    );
    assert!(res.tuples.is_empty());
    assert!(res.values.is_empty());
}

/// Heavy skew: one join value shared by many tuples on both sides (the
/// case where bounded-multiplicity protocols like Senate degenerate; the
/// paper stresses secure Yannakakis needs no such bound).
#[test]
fn skewed_multiplicity_query() {
    let ring = NaturalRing::paper_default();
    let r1_rows: Vec<(Vec<u64>, u64)> = (0..30).map(|i| (vec![1, i], 1)).collect();
    let r2_rows: Vec<(Vec<u64>, u64)> = (0..20).map(|i| (vec![1, 100 + i], 2)).collect();
    let r1 = Relation::from_rows(ring, strings(&["k", "x"]), r1_rows);
    let r2 = Relation::from_rows(ring, strings(&["k", "y"]), r2_rows);
    let query = secyan_core::SecureQuery::new(
        vec![strings(&["k", "x"]), strings(&["k", "y"])],
        vec![Role::Alice, Role::Bob],
        JoinTree::chain(2),
        vec![],
    );
    let want = naive_join_aggregate(&[r1.clone(), r2.clone()], &[]);
    let q2 = query.clone();
    let (res, _, _) = run_protocol(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 9);
            secyan_core::secure_yannakakis(&mut sess, &query, &[Some(r1), None], Role::Alice)
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 10);
            secyan_core::secure_yannakakis(&mut sess, &q2, &[None, Some(r2)], Role::Alice)
        },
    );
    // 30 × 20 = 600 combinations of annotation 1·2.
    assert_eq!(res.values, vec![want.annots[0]]);
    assert_eq!(res.values, vec![1200]);
}
