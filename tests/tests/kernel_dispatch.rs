//! Kernel-dispatch determinism: the SIMD kernel layer must not change a
//! single byte on the wire. Every accelerated kernel (movemask
//! transpose, batched CLMUL GF(2^64), pipelined AES-NI) is bit-exact
//! against its portable scalar arm, so a full protocol run must produce
//! identical results and identical transcript bytes under every
//! combination of {scalar forced, SIMD allowed} × {1 thread, 4 threads}.
//! This is the protocol-level closure of the per-kernel equivalence
//! tests in `secyan-crypto`: if any kernel's arms diverged — or any arm
//! interacted with the band partitioning — the cross-arm transcript
//! comparison here would catch it.

use rand::SeedableRng;
use secyan_core::par;
use secyan_crypto::cpu;
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_ot::{OtReceiver, OtSender};
use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_transport::{run_protocol_captured, Role};
use std::sync::Mutex;

/// Both `par::set_threads` and `cpu::set_force_scalar` are
/// process-global; serialize the tests that flip them.
static CONFIG_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` under one (dispatch arm, thread count) configuration,
/// restoring defaults after.
fn with_config<T>(force_scalar: bool, threads: usize, f: impl FnOnce() -> T) -> T {
    let _guard = cpu::override_lock();
    cpu::set_force_scalar(force_scalar);
    par::set_threads(threads);
    let out = f();
    par::set_threads(0);
    cpu::clear_force_scalar();
    out
}

/// The four configurations the kernel layer must not distinguish.
const CONFIGS: [(bool, usize); 4] = [(true, 1), (false, 1), (true, 4), (false, 4)];

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

type Transcript = Vec<(Role, Vec<u8>)>;

/// The Example-1.1-shaped chain query: circuit PSI (KKRT + OPPRF hint
/// polynomials over GF(2^64)), GC reductions (levelized garbling over
/// the AES kernels), and the OSN — every accelerated kernel sits on this
/// path.
fn run_query() -> (Vec<Vec<u64>>, Vec<u64>, Transcript) {
    let ring = NaturalRing::paper_default();
    let n = 48u64;
    let r1 = Relation::from_rows(
        ring,
        strings(&["person"]),
        (0..n).map(|i| (vec![i], i + 1)).collect(),
    );
    let r2 = Relation::from_rows(
        ring,
        strings(&["person", "disease"]),
        (0..n).map(|i| (vec![i, i % 7], 2 * i + 1)).collect(),
    );
    let r3 = Relation::from_rows(
        ring,
        strings(&["disease", "class"]),
        (0..7u64).map(|d| (vec![d, d % 3], 1)).collect(),
    );
    let query = secyan_core::SecureQuery::new(
        vec![
            strings(&["person"]),
            strings(&["person", "disease"]),
            strings(&["disease", "class"]),
        ],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        strings(&["class"]),
    );
    let q2 = query.clone();
    let (result, _, _, handle) = run_protocol_captured(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 1);
            secyan_core::secure_yannakakis(
                &mut sess,
                &query,
                &[Some(r1), None, Some(r3)],
                Role::Alice,
            )
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 2);
            secyan_core::secure_yannakakis(&mut sess, &q2, &[None, Some(r2), None], Role::Alice);
        },
    );
    (result.tuples, result.values, handle.messages())
}

#[test]
fn full_query_transcript_is_dispatch_invariant() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let (tuples_ref, values_ref, transcript_ref) = with_config(true, 1, run_query);
    for (force, threads) in &CONFIGS[1..] {
        let (tuples, values, transcript) = with_config(*force, *threads, run_query);
        let arm = if *force { "scalar" } else { "simd" };
        assert_eq!(tuples_ref, tuples, "tuples diverged ({arm}, {threads}t)");
        assert_eq!(values_ref, values, "values diverged ({arm}, {threads}t)");
        assert_eq!(
            transcript_ref.len(),
            transcript.len(),
            "message count diverged ({arm}, {threads}t)"
        );
        for (i, (m_ref, m)) in transcript_ref.iter().zip(&transcript).enumerate() {
            assert_eq!(
                m_ref.0, m.0,
                "message {i} direction diverged ({arm}, {threads}t)"
            );
            assert_eq!(
                m_ref.1, m.1,
                "message {i} payload diverged ({arm}, {threads}t)"
            );
        }
    }
}

/// IKNP extension above `OT_PAR_MIN`, so the SIMD transpose composes
/// with the column-band partitioning in the same run: the coalesced
/// column message and every hashed output must be identical across all
/// four configurations.
fn run_iknp() -> (
    Vec<(secyan_crypto::Block, secyan_crypto::Block)>,
    Vec<secyan_crypto::Block>,
    Transcript,
) {
    const M: usize = 8192;
    let hasher = TweakHasher::default();
    let (pairs, got, _, handle) = run_protocol_captured(
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(121);
            let mut ot = OtSender::setup(ch, &mut rng, hasher);
            ot.random(ch, M)
        },
        move |ch| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(122);
            let mut ot = OtReceiver::setup(ch, &mut rng, hasher);
            let choices: Vec<bool> = (0..M).map(|i| i % 5 == 0).collect();
            ot.random(ch, &choices)
        },
    );
    (pairs, got, handle.messages())
}

#[test]
fn iknp_extension_transcript_is_dispatch_invariant() {
    let _guard = CONFIG_LOCK.lock().unwrap();
    let reference = with_config(true, 1, run_iknp);
    for (force, threads) in &CONFIGS[1..] {
        let run = with_config(*force, *threads, run_iknp);
        let arm = if *force { "scalar" } else { "simd" };
        assert_eq!(
            reference.0, run.0,
            "sender pairs diverged ({arm}, {threads}t)"
        );
        assert_eq!(
            reference.1, run.1,
            "receiver outputs diverged ({arm}, {threads}t)"
        );
        assert_eq!(
            reference.2, run.2,
            "transcript diverged ({arm}, {threads}t)"
        );
    }
}
