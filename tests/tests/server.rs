//! The multi-session server runtime under concurrent load and hostile
//! handshakes. Satellite coverage for the networked runtime (DESIGN.md
//! §15): N simultaneous sessions with distinct query shapes must all
//! produce correct results with strictly per-session preprocessing pools,
//! and every malformed hello — wrong version, oversized declaration,
//! garbage bytes, half-open connect — must surface as a typed rejection
//! within the hello deadline, never a hang or a panic, with the server
//! still serving afterwards.

use secyan_client::{run_session, ClientConfig, ClientError};
use secyan_core::ShapeKey;
use secyan_server::{serve, QuerySpec, RunMode, ServerConfig, SessionOutcome, SessionRequest};
use secyan_testkit::oracle;
use secyan_transport::handshake::{
    read_server_hello, write_client_hello, ClientHello, HandshakeError, CODE_REJECT_MALFORMED,
    CODE_REJECT_SHAPE, CODE_REJECT_VERSION, PROTOCOL_VERSION,
};
use secyan_transport::Role;
use std::collections::BTreeSet;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A client config with deadlines short enough that a misbehaving server
/// fails the test quickly instead of hanging it.
fn client_config(addr: SocketAddr) -> ClientConfig {
    let mut cfg = ClientConfig::new(addr);
    cfg.hello_timeout = Duration::from_secs(5);
    cfg
}

/// The expected shape key of a spec's instance, derived exactly as both
/// endpoints derive it during negotiation.
fn expected_shape_key(spec: &QuerySpec) -> u64 {
    let inst = spec.instance();
    ShapeKey::of(&inst.query(), &inst.sizes(), Role::Alice, inst.ell as usize).0
}

/// Run one well-formed session against `addr` and assert the revealed
/// result matches the plaintext oracle. Used both as the concurrency
/// worker and as the liveness probe after every negative-path test.
fn run_good_session(addr: SocketAddr, req: &SessionRequest) {
    let out = run_session(&client_config(addr), req)
        .unwrap_or_else(|e| panic!("well-formed session {req:?} failed: {e}"));
    assert_eq!(
        out.rows,
        oracle(&req.spec.instance()),
        "session {req:?} revealed a wrong result"
    );
}

/// Five simultaneous sessions with five distinct query shapes, all in
/// `Pooled` mode: every client must reveal the correct result, and every
/// per-session report must show a fully self-contained pool (all hits,
/// no misses, nothing left) keyed by that session's own shape — proving
/// no preprocessing material bled between sessions.
#[test]
fn concurrent_sessions_are_isolated_and_correct() {
    let mut handle = serve(ServerConfig::default()).expect("server binds");
    let addr = handle.addr();
    let specs = [
        QuerySpec::Random { seed: 0 },
        QuerySpec::Random { seed: 1 },
        QuerySpec::Random { seed: 2 },
        QuerySpec::Chain { seed: 0 },
        QuerySpec::Chain { seed: 1 },
    ];
    const RUNS: u32 = 2;
    let workers: Vec<_> = specs
        .iter()
        .map(|&spec| {
            std::thread::spawn(move || {
                run_good_session(
                    addr,
                    &SessionRequest {
                        spec,
                        mode: RunMode::Pooled,
                        runs: RUNS,
                    },
                );
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client worker panicked");
    }
    handle.stop();

    let reports = handle.reports();
    assert_eq!(reports.len(), specs.len(), "one report per session");
    for r in &reports {
        assert!(
            matches!(r.outcome, SessionOutcome::Completed { runs: RUNS, .. }),
            "session {} did not complete all {RUNS} runs: {:?}",
            r.id,
            r.outcome
        );
        // A balanced pooled session consumes exactly what it provisioned:
        // every online run hits its *own* pool, nothing is missed (which
        // would mean falling back to inline preprocessing), and nothing
        // is left banked (which would mean another session's material
        // leaked in).
        assert_eq!(
            (r.pool_hits, r.pool_misses, r.pool_left),
            (u64::from(RUNS), 0, 0),
            "session {}'s pool is not self-contained",
            r.id
        );
    }
    // Each session negotiated its own shape: the reported keys are
    // exactly the five distinct expected ones.
    let reported: BTreeSet<u64> = reports
        .iter()
        .map(|r| r.shape_key.expect("accepted session has a key").0)
        .collect();
    let expected: BTreeSet<u64> = specs.iter().map(expected_shape_key).collect();
    assert_eq!(
        expected.len(),
        specs.len(),
        "specs must have distinct shapes"
    );
    assert_eq!(
        reported, expected,
        "per-session shape keys do not match the negotiated queries"
    );
}

/// A client declaring the wrong protocol version is refused with the
/// typed version-rejection verdict — and the server keeps serving.
#[test]
fn wrong_protocol_version_is_rejected_typed() {
    let handle = serve(ServerConfig::default()).expect("server binds");
    let req = SessionRequest {
        spec: QuerySpec::Chain { seed: 0 },
        mode: RunMode::Single,
        runs: 1,
    };
    let mut cfg = client_config(handle.addr());
    cfg.version = PROTOCOL_VERSION + 1;
    match run_session(&cfg, &req) {
        Err(ClientError::Handshake(HandshakeError::Rejected { code, .. })) => {
            assert_eq!(code, CODE_REJECT_VERSION);
        }
        other => panic!("wrong version must be rejected typed, got {other:?}"),
    }
    run_good_session(handle.addr(), &req);
}

/// A peer speaking a different protocol entirely (an HTTP request) is
/// answered with a typed malformed-rejection, not a hang or a crash.
#[test]
fn garbage_bytes_are_rejected_typed() {
    let handle = serve(ServerConfig::default()).expect("server binds");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream
        .write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write garbage");
    match read_server_hello(&mut stream) {
        Err(HandshakeError::Rejected { code, .. }) => {
            assert_eq!(code, CODE_REJECT_MALFORMED);
        }
        other => panic!("garbage hello must be rejected typed, got {other:?}"),
    }
    run_good_session(
        handle.addr(),
        &SessionRequest {
            spec: QuerySpec::Chain { seed: 0 },
            mode: RunMode::Single,
            runs: 1,
        },
    );
}

/// A hello declaring a near-4GiB payload is refused *before* any
/// allocation, within the hello deadline: the rejection must arrive
/// promptly even though the declared body never does.
#[test]
fn oversized_hello_declaration_is_rejected_promptly() {
    let handle = serve(ServerConfig::default()).expect("server binds");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    // Hand-rolled hello header: magic | version | ell | shape_key, then a
    // hostile declared payload length with no body behind it.
    let mut hello = Vec::new();
    hello.extend_from_slice(b"SYH1");
    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    hello.extend_from_slice(&64u32.to_le_bytes());
    hello.extend_from_slice(&0u64.to_le_bytes());
    hello.extend_from_slice(&u32::MAX.to_le_bytes());
    let started = Instant::now();
    stream.write_all(&hello).expect("write hostile hello");
    match read_server_hello(&mut stream) {
        Err(HandshakeError::Rejected { code, .. }) => {
            assert_eq!(code, CODE_REJECT_MALFORMED);
        }
        other => panic!("oversized declaration must be rejected typed, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "rejection of an oversized declaration took {:?} — the server \
         tried to read (or allocate) the declared body",
        started.elapsed()
    );
    run_good_session(
        handle.addr(),
        &SessionRequest {
            spec: QuerySpec::Chain { seed: 0 },
            mode: RunMode::Single,
            runs: 1,
        },
    );
}

/// A well-formed hello whose payload is not a session request, and one
/// whose declared shape key disagrees with its own request, each get
/// their dedicated typed verdicts.
#[test]
fn bad_payload_and_shape_mismatch_are_rejected_typed() {
    let handle = serve(ServerConfig::default()).expect("server binds");
    let req = SessionRequest {
        spec: QuerySpec::Chain { seed: 0 },
        mode: RunMode::Single,
        runs: 1,
    };
    for (hello, want) in [
        (
            // Valid preamble, garbage request payload.
            ClientHello {
                version: PROTOCOL_VERSION,
                ell: 64,
                shape_key: 0,
                payload: vec![0xde, 0xad, 0xbe],
            },
            CODE_REJECT_MALFORMED,
        ),
        (
            // Valid request, but the declared shape key is off by one.
            ClientHello {
                version: PROTOCOL_VERSION,
                ell: req.spec.instance().ell,
                shape_key: expected_shape_key(&req.spec).wrapping_add(1),
                payload: req.encode(),
            },
            CODE_REJECT_SHAPE,
        ),
    ] {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        write_client_hello(&mut stream, &hello).expect("write hello");
        match read_server_hello(&mut stream) {
            Err(HandshakeError::Rejected { code, .. }) => assert_eq!(code, want),
            other => panic!("hello {hello:?} must be rejected with code {want}, got {other:?}"),
        }
    }
    run_good_session(handle.addr(), &req);
}

/// A half-open connect — the peer connects and then never speaks — costs
/// the server one thread for at most the hello deadline, after which the
/// session is recorded as a typed handshake failure and the server keeps
/// serving.
#[test]
fn half_open_connect_times_out_typed() {
    let config = ServerConfig {
        hello_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = serve(config).expect("server binds");
    let _mute = TcpStream::connect(handle.addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reports = handle.reports();
        if let Some(r) = reports.first() {
            assert!(
                matches!(r.outcome, SessionOutcome::HandshakeFailed(_)),
                "half-open connect produced {:?}, not a handshake failure",
                r.outcome
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "half-open connect was never reported — the hello deadline did not fire"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    run_good_session(
        handle.addr(),
        &SessionRequest {
            spec: QuerySpec::Chain { seed: 0 },
            mode: RunMode::PhaseSplit,
            runs: 1,
        },
    );
}
