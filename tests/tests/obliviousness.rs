//! Obliviousness tests: the transcript (sequence of message lengths and
//! directions) of every protocol must be a function of the *public*
//! parameters only. We run the same protocol twice with different private
//! data of identical public shape and require byte-identical transcript
//! structure — a direct, mechanical check of the property the paper's
//! security argument rests on.

use secyan_core::{run_offline, run_online};
use secyan_crypto::{RingCtx, TweakHasher};
use secyan_relation::{JoinTree, NaturalRing, Relation};
use secyan_transport::{run_protocol, run_protocol_recorded, CommStats, Phase, Role};

fn strings(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Run Example-1.1-shaped query on given data; return the transcript
/// length sequence.
fn transcript_of(
    r1_rows: Vec<(Vec<u64>, u64)>,
    r2_rows: Vec<(Vec<u64>, u64)>,
    r3_rows: Vec<(Vec<u64>, u64)>,
) -> Vec<(Role, usize)> {
    let ring = NaturalRing::paper_default();
    let r1 = Relation::from_rows(ring, strings(&["person"]), r1_rows);
    let r2 = Relation::from_rows(ring, strings(&["person", "disease"]), r2_rows);
    let r3 = Relation::from_rows(ring, strings(&["disease", "class"]), r3_rows);
    let query = secyan_core::SecureQuery::new(
        vec![
            strings(&["person"]),
            strings(&["person", "disease"]),
            strings(&["disease", "class"]),
        ],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        strings(&["class"]),
    );
    let q2 = query.clone();
    // Transcript recording is opt-in; the default channel doesn't have it.
    let (transcript, _, _) = run_protocol_recorded(
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 1);
            secyan_core::secure_yannakakis(
                &mut sess,
                &query,
                &[Some(r1), None, Some(r3)],
                Role::Alice,
            );
            sess.ch.transcript_lengths()
        },
        move |ch| {
            let mut sess =
                secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 2);
            secyan_core::secure_yannakakis(&mut sess, &q2, &[None, Some(r2), None], Role::Alice);
        },
    );
    transcript
}

/// Two databases with identical public shape (relation sizes) but totally
/// different contents — including different join selectivities, different
/// numbers of groups, and different dangling-tuple patterns.
#[test]
fn transcript_depends_only_on_public_sizes() {
    // Database A: everything joins, 2 classes.
    let t_a = transcript_of(
        vec![(vec![1], 10), (vec![2], 20), (vec![3], 30)],
        vec![
            (vec![1, 1], 5),
            (vec![2, 1], 6),
            (vec![3, 2], 7),
            (vec![1, 2], 8),
        ],
        vec![(vec![1, 100], 1), (vec![2, 200], 1)],
    );
    // Database B: same sizes; nothing joins at all, different values.
    let t_b = transcript_of(
        vec![(vec![91], 1), (vec![92], 1), (vec![93], 1)],
        vec![
            (vec![77, 5], 50),
            (vec![78, 5], 60),
            (vec![79, 6], 70),
            (vec![80, 6], 80),
        ],
        vec![(vec![40, 300], 1), (vec![41, 300], 1)],
    );
    assert_eq!(
        t_a.len(),
        t_b.len(),
        "different number of messages: {} vs {}",
        t_a.len(),
        t_b.len()
    );
    for (i, (ma, mb)) in t_a.iter().zip(&t_b).enumerate() {
        assert_eq!(ma.0, mb.0, "message {i} direction differs");
        assert_eq!(
            ma.1, mb.1,
            "message {i} length differs ({:?} vs {:?})",
            ma, mb
        );
    }
}

/// Annotation values must not influence the transcript either (e.g. a
/// database where every annotation is zero = every tuple is a dummy).
#[test]
fn all_dummy_database_is_indistinguishable() {
    let t_real = transcript_of(
        vec![(vec![1], 10), (vec![2], 20)],
        vec![(vec![1, 1], 5), (vec![2, 2], 6)],
        vec![(vec![1, 9], 1), (vec![2, 8], 1)],
    );
    let t_dummy = transcript_of(
        vec![(vec![1], 0), (vec![2], 0)],
        vec![(vec![1, 1], 0), (vec![2, 2], 0)],
        vec![(vec![1, 9], 0), (vec![2, 8], 0)],
    );
    assert_eq!(t_real.len(), t_dummy.len());
    for (ma, mb) in t_real.iter().zip(&t_dummy) {
        assert_eq!(ma, mb);
    }
}

/// Run the Example-1.1-shaped query in explicit offline/online phase-split
/// mode; return the per-message `(sender, phase, length)` transcript and
/// the communication stats.
fn phased_transcript_of(
    r1_rows: Vec<(Vec<u64>, u64)>,
    r2_rows: Vec<(Vec<u64>, u64)>,
    r3_rows: Vec<(Vec<u64>, u64)>,
) -> (Vec<(Role, Phase, usize)>, CommStats) {
    let ring = NaturalRing::paper_default();
    let sizes = vec![r1_rows.len(), r2_rows.len(), r3_rows.len()];
    let r1 = Relation::from_rows(ring, strings(&["person"]), r1_rows);
    let r2 = Relation::from_rows(ring, strings(&["person", "disease"]), r2_rows);
    let r3 = Relation::from_rows(ring, strings(&["disease", "class"]), r3_rows);
    let query = secyan_core::SecureQuery::new(
        vec![
            strings(&["person"]),
            strings(&["person", "disease"]),
            strings(&["disease", "class"]),
        ],
        vec![Role::Alice, Role::Bob, Role::Alice],
        JoinTree::chain(3),
        strings(&["class"]),
    );
    let q2 = query.clone();
    let s2 = sizes.clone();
    let (handle, (), stats) = run_protocol_recorded(
        move |ch| {
            let handle = ch.transcript_handle();
            let m = run_offline(
                ch,
                &query,
                &sizes,
                Role::Alice,
                RingCtx::new(32),
                TweakHasher::default(),
                1,
            );
            run_online(
                ch,
                &query,
                &[Some(r1), None, Some(r3)],
                Role::Alice,
                RingCtx::new(32),
                TweakHasher::default(),
                m,
            );
            handle
        },
        move |ch| {
            let m = run_offline(
                ch,
                &q2,
                &s2,
                Role::Alice,
                RingCtx::new(32),
                TweakHasher::default(),
                2,
            );
            run_online(
                ch,
                &q2,
                &[None, Some(r2), None],
                Role::Alice,
                RingCtx::new(32),
                TweakHasher::default(),
                m,
            );
        },
    );
    (handle.phased_lengths(), stats)
}

/// Per-phase obliviousness: in phase-split mode, the offline transcript
/// (which sees only public sizes) *and* the online transcript (which sees
/// the private data) must each be shape-identical across databases of the
/// same public shape — not just their concatenation. A length leak that
/// moved bytes between phases while preserving totals would be caught
/// here and nowhere else.
#[test]
fn per_phase_transcripts_depend_only_on_public_sizes() {
    let (t_a, stats_a) = phased_transcript_of(
        vec![(vec![1], 10), (vec![2], 20), (vec![3], 30)],
        vec![
            (vec![1, 1], 5),
            (vec![2, 1], 6),
            (vec![3, 2], 7),
            (vec![1, 2], 8),
        ],
        vec![(vec![1, 100], 1), (vec![2, 200], 1)],
    );
    let (t_b, stats_b) = phased_transcript_of(
        vec![(vec![91], 1), (vec![92], 1), (vec![93], 1)],
        vec![
            (vec![77, 5], 50),
            (vec![78, 5], 60),
            (vec![79, 6], 70),
            (vec![80, 6], 80),
        ],
        vec![(vec![40, 300], 1), (vec![41, 300], 1)],
    );
    // Phase-split runs must tag every frame offline or online.
    assert!(
        t_a.iter().all(|(_, p, _)| *p != Phase::Single),
        "untagged frame in a phase-split run"
    );
    let shape = |t: &[(Role, Phase, usize)], p: Phase| -> Vec<(Role, usize)> {
        t.iter()
            .filter(|(_, q, _)| *q == p)
            .map(|(r, _, n)| (*r, *n))
            .collect()
    };
    let off_a = shape(&t_a, Phase::Offline);
    let off_b = shape(&t_b, Phase::Offline);
    let on_a = shape(&t_a, Phase::Online);
    let on_b = shape(&t_b, Phase::Online);
    assert!(
        !off_a.is_empty() && !on_a.is_empty(),
        "both phases must communicate ({} offline, {} online messages)",
        off_a.len(),
        on_a.len()
    );
    assert_eq!(off_a, off_b, "offline transcript shape differs");
    assert_eq!(on_a, on_b, "online transcript shape differs");
    // Round structure of each phase is equally data-independent.
    assert_eq!(stats_a.offline_rounds, stats_b.offline_rounds);
    assert_eq!(stats_a.online_rounds, stats_b.online_rounds);
}

/// Rounds must depend only on the query, not the data size — the paper's
/// constant-round claim. Doubling the data must not change the number of
/// direction switches.
#[test]
fn round_count_is_data_size_independent() {
    let ring = NaturalRing::paper_default();
    let mut rounds = Vec::new();
    for n in [4usize, 16] {
        let r1 = Relation::from_rows(
            ring,
            strings(&["a"]),
            (0..n as u64).map(|i| (vec![i], 1)).collect(),
        );
        let r2 = Relation::from_rows(
            ring,
            strings(&["a", "g"]),
            (0..n as u64).map(|i| (vec![i, i % 3], 2)).collect(),
        );
        let query = secyan_core::SecureQuery::new(
            vec![strings(&["a"]), strings(&["a", "g"])],
            vec![Role::Alice, Role::Bob],
            JoinTree::chain(2),
            strings(&["g"]),
        );
        let q2 = query.clone();
        let (_, _, stats) = run_protocol(
            move |ch| {
                let mut sess =
                    secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 3);
                secyan_core::secure_yannakakis(&mut sess, &query, &[Some(r1), None], Role::Alice)
            },
            move |ch| {
                let mut sess =
                    secyan_core::Session::new(ch, RingCtx::new(32), TweakHasher::default(), 4);
                secyan_core::secure_yannakakis(&mut sess, &q2, &[None, Some(r2)], Role::Alice)
            },
        );
        rounds.push(stats.rounds);
    }
    assert_eq!(rounds[0], rounds[1], "rounds grew with data size");
}
