//! Clean code in the secret scope: none of this may be flagged. Each item
//! is the hygienic twin of a seeded violation.

/// Constant-time comparison: no `==` on the secret, no branch.
pub fn key_compare_ct(key: u128, other: u128) -> u8 {
    let x = key ^ other;
    let folded = (x | x.wrapping_neg()) >> 127;
    1u8 ^ (folded as u8)
}

/// Branchless select: arithmetic masking instead of `if choice`.
pub fn select_ct(choice_mask: u128, a: u128, b: u128) -> u128 {
    b ^ (choice_mask & (a ^ b))
}

/// Public sizes of secret collections are fine.
pub fn count_ok(labels: &[u128], seeds: &[u128]) -> bool {
    labels.len() == seeds.len() && !labels.is_empty()
}

/// Branching on public values is fine, even next to secret names.
pub fn public_branch(n: usize, pads: &[u128]) -> u128 {
    let mut acc = 0u128;
    if n > 16 {
        for p in pads {
            acc ^= p;
        }
    }
    acc
}

/// `unsafe` with a SAFETY justification passes.
pub fn justified(p: *const u8) -> u8 {
    // SAFETY: the caller hands us a pointer derived from a live reference
    // in the fixture harness; reads of one byte are in bounds.
    unsafe { *p }
}

/// Secret words inside strings or comments must not trip the ident rules
/// (the label of a key seed share choice is discussed here freely).
pub fn strings_ok(x: u64) -> bool {
    let tag = "key label seed == delta";
    tag.len() as u64 == x
}

#[cfg(test)]
mod tests {
    /// Inside tests everything is allowed: compare, print, branch.
    #[test]
    fn test_freedom() {
        let key = 3u128;
        let choice = true;
        assert!(key == 3);
        if choice {
            println!("key = {:?}", key);
        }
    }
}
