//! Seeded violations inside the (fixture) crypto crate: every rule in the
//! catalogue must fire exactly where annotated.

const SBOX: [u8; 256] = [0; 256];

/// R-INDEX (a): a const table indexed by data — the software-AES pattern.
pub fn table_lookup(x: u8) -> u8 {
    // ct-expect: R-INDEX
    SBOX[x as usize]
}

/// R-INDEX (b): secret-marker identifier used as an index.
pub fn secret_indexed(v: &[u8], choice_bit: usize) -> u8 {
    // ct-expect: R-INDEX
    v[choice_bit]
}

/// R-EQ: variable-time comparison on key material.
pub fn key_compare(key: u128, other: u128) -> bool {
    // ct-expect: R-EQ
    key == other
}

/// R-EQ on a derived PartialEq over a secret-named type (and R-DEBUG for
/// the derived Debug).
// ct-expect: R-EQ R-DEBUG
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireLabel(pub u128);

/// R-BRANCH: control flow on a secret.
pub fn branch_on_choice(choice: bool, a: u128, b: u128) -> u128 {
    // ct-expect: R-BRANCH
    if choice {
        a
    } else {
        b
    }
}

/// R-BRANCH via match.
pub fn match_on_share(share: u64) -> u64 {
    // ct-expect: R-BRANCH
    match share {
        0 => 1,
        _ => 0,
    }
}

/// R-DEBUG: format-printing a secret.
pub fn debug_print(seed: u128) {
    // ct-expect: R-DEBUG
    println!("prg seed = {:?}", seed);
}

/// R-UNSAFE: an unsafe block with no justification comment.
pub fn unsound_doc(p: *const u8) -> u8 {
    // ct-expect: R-UNSAFE
    unsafe { *p }
}
