//! Lexer stress: raw strings, nested block comments, escaped quotes, and
//! string line-continuations must not desynchronize line tracking. The
//! seeded violation at the bottom only matches its annotation if every
//! line number above is exact, so any scanner desync fails the fixture
//! check as a false-positive/false-negative pair.

/// Raw strings may contain quote marks, comment markers, and words that
/// look like violations — all invisible to the lint.
pub fn raw_strings() -> usize {
    let a = r#"seed == key " // not a comment"#;
    let b = r##"nested "#raw"# body with if key == 0 {"##;
    a.len() + b.len()
}

/// Nested block comments must track depth, escaped quotes must not end
/// the string early, and a trailing backslash continues the string onto
/// the next line without eating the newline.
pub fn tricky_spans() -> usize {
    /* outer /* inner == key */ still a comment */
    let c = "escaped \" quote and line \
continuation";
    let d = 'x';
    c.len() + d as usize
}

/// The annotated violation: if any construct above shifted the line map,
/// this finding lands on the wrong line and the self-test fails.
pub fn seeded(key: u64, other: u64) -> bool {
    // ct-expect: R-EQ
    key == other
}
