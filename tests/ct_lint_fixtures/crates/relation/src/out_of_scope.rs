//! Outside the secret scope (crates/relation is plaintext query planning):
//! the secret-value rules do not apply; only R-UNSAFE does.

/// `key` here is a join key — public table data. Not flagged.
pub fn join_key_eq(key: u64, other: u64) -> bool {
    key == other
}

/// Branching on join keys is the whole point of a query engine.
pub fn partition(keys: &[u64]) -> usize {
    let mut n = 0;
    for &key in keys {
        if key % 2 == 0 {
            n += 1;
        }
    }
    n
}

/// But unjustified unsafe is still flagged everywhere.
pub fn still_checked(p: *const u64) -> u64 {
    // ct-expect: R-UNSAFE
    unsafe { *p }
}
