//! Round-discipline fixtures: a send inside a loop that also blocks on
//! the wire (or forces a frame) pays one round trip per iteration — the
//! per-edge ping-pong the staged send/flush transport API exists to
//! eliminate. Seeded T-COMM violations plus the staged clean twins.

/// Per-edge ping-pong: one wire round trip per element.
pub fn pingpong_loop(ch: &mut Channel, xs: &[u64]) -> u64 {
    let mut acc = 0;
    for x in xs {
        // taint-expect: T-COMM
        ch.send_u64(*x);
        acc ^= ch.recv_u64();
    }
    acc
}

/// Forcing a frame per iteration defeats staging the same way.
pub fn flush_per_item(ch: &mut Channel, xs: &[u64]) {
    for x in xs {
        // taint-expect: T-COMM
        ch.send_u64(*x);
        ch.flush();
    }
}

/// Clean twin: stage the whole batch, then receive — the sends coalesce
/// into one super-frame and the loop costs a single round trip total.
pub fn staged_batch(ch: &mut Channel, xs: &[u64]) -> u64 {
    for x in xs {
        ch.send_u64(*x);
    }
    let mut acc = 0;
    for _x in xs {
        acc ^= ch.recv_u64();
    }
    acc
}

/// Clean twin: receive-only loops are the consuming half of a staged
/// exchange; there is nothing to coalesce on this side.
pub fn drain_batch(ch: &mut Channel, xs: &[u64]) -> u64 {
    let mut acc = 0;
    for _x in xs {
        acc ^= ch.recv_u64();
    }
    acc
}
