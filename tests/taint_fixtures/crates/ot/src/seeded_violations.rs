//! Seeded taint violations in the secret scope: every annotated line must
//! be flagged by `cargo xtask taint --fixtures`, and nothing else may fire.
//! Each item has a hygienic twin in `clean.rs`.

/// Two-hop flow: the exposed value moves through two `let`s before the
/// branch — invisible to line-local ct-lint, caught by the dataflow pass.
pub fn branch_on_secret(s: Secret<u64>) -> u64 {
    let a = s.expose();
    let b = a + 1;
    // taint-expect: T-BRANCH
    if b > 0 {
        return 1;
    }
    0
}

/// Secret loop trip count: iteration count is timing-visible.
pub fn loop_on_secret(s: Secret<usize>) -> usize {
    let n = s.expose();
    let mut acc = 0;
    // taint-expect: T-LOOP
    for i in 0..n {
        acc += i;
    }
    acc
}

/// Secret table index: the memory address leaks through the cache.
pub fn index_on_secret(s: Secret<usize>, table: &[u8]) -> u8 {
    let i = s.expose();
    // taint-expect: T-INDEX
    table[i]
}

/// Marker-named parameters taint in secret-scope crates even without an
/// explicit source call.
pub fn marker_branch(delta: u128) -> u128 {
    // taint-expect: T-BRANCH
    if delta & 1 == 1 {
        return 3;
    }
    0
}

/// Match on a secret (the scrutinee is a branch) and index through the arm
/// binding (the binding inherits the scrutinee's taint).
pub fn match_on_secret(s: Secret<Option<usize>>, v: &[u8]) -> u8 {
    let o = s.expose();
    // taint-expect: T-BRANCH
    match o {
        // taint-expect: T-INDEX
        Some(i) => v[i],
        None => 0,
    }
}

/// Taint survives a closure boundary: the iterator receiver feeds the
/// closure parameter.
pub fn closure_branch(s: Secret<Vec<u64>>) -> u64 {
    let vals = s.expose();
    // taint-expect: T-BRANCH
    vals.iter().map(|x| if *x > 0 { 1 } else { 0 }).sum()
}
