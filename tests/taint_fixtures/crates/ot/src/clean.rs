//! Clean code in the secret scope: none of this may be flagged. Each item
//! is the hygienic twin of a seeded violation, plus the suppression path.

/// The *length* of an exposed value is public shape — branching on it is
/// fine (`.len()` / `.is_empty()` / `.capacity()` launder size, not value).
pub fn branch_on_public_len(s: Secret<Vec<u8>>) -> usize {
    let n = s.expose().len();
    if n > 0 {
        return n;
    }
    0
}

/// Loop bounds from public shape metadata.
pub fn loop_public(counts: &[usize]) -> usize {
    let mut acc = 0;
    for n in counts {
        acc += n;
    }
    acc
}

/// Indexing with a public counter is fine, even on a table that also
/// stores masked data.
pub fn index_public(table: &[u8], round: usize) -> u8 {
    table[round % table.len()]
}

/// Constant-time use of a secret: XOR-fold without branch, loop, or index.
pub fn fold_secret(s: Secret<u64>, acc: u64) -> u64 {
    let x = s.expose();
    acc ^ x
}

/// Reviewed declassification: the finding is real but justified, so an
/// inline suppression keeps it out of the report.
pub fn reviewed_declass(s: Secret<u64>) -> u64 {
    let out = s.expose();
    // taint-ok: protocol output, declassified by design in this fixture.
    if out == 0 {
        return 1;
    }
    out
}
