//! Communication-shape fixtures: message lengths must trace to public
//! shape. Seeded T-COMM violations plus the clean public-shape twins
//! (transport is outside the marker-param secret scope, so taint here
//! always originates from an explicit source call).

/// Buffer sized from a secret, then sent: the frame length leaks it.
pub fn send_secret_sized(ch: &mut Channel, s: Secret<usize>) {
    let n = s.expose();
    // taint-expect: T-COMM
    let buf = vec![0u8; n];
    ch.send(buf);
}

/// Length header encoding a secret count.
pub fn send_secret_header(ch: &mut Channel, s: Secret<u32>) {
    let n = s.expose();
    // taint-expect: T-COMM
    ch.send(n.to_le_bytes().to_vec());
}

/// Resizing a wire-bound buffer to a secret length.
pub fn resize_secret(ch: &mut Channel, s: Secret<usize>) {
    let n = s.expose();
    let mut buf = Vec::new();
    // taint-expect: T-COMM
    buf.resize(n, 0u8);
    ch.send(buf);
}

/// Clean twin: buffer sized by public shape (row count from the query
/// plan), contents freely derived from masked data. Only lengths are
/// checked — payload bytes are protected by the masking upstream.
pub fn send_public_shape(ch: &mut Channel, rows: usize, mask: &[u8]) {
    let mut buf = vec![0u8; rows * 16];
    for (b, m) in buf.iter_mut().zip(mask) {
        *b ^= m;
    }
    ch.send(buf);
}

/// Clean twin: the *length* of an exposed vector is public shape, so
/// sizing a reply from it is fine.
pub fn send_len_of_secret(ch: &mut Channel, s: Secret<Vec<u8>>) {
    let vals = s.expose();
    let reply = vec![0u8; vals.len()];
    ch.send(reply);
}
