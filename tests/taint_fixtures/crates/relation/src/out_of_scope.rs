//! Outside the secret-scope crates, marker-named identifiers are ordinary
//! public values (a relation's join `key` is public metadata, not a
//! cryptographic key): nothing here may be flagged.

/// Branching on a join key during plan construction is fine.
pub fn pick_side(key: u64, share: u64) -> u64 {
    if key > share {
        return key - share;
    }
    share - key
}

/// Loops and indexing over marker-named publics are fine too.
pub fn sum_shares(shares: &[u64]) -> u64 {
    let mut acc = 0;
    for i in 0..shares.len() {
        acc += shares[i];
    }
    acc
}
