//! Determinism fixtures for pool dispatch closures (the DESIGN.md §9
//! three-rule contract): no RNG, no channel I/O, no clocks, no spawns
//! inside the parallel sections. Seeded D-PAR violations plus clean twins.

/// RNG inside a dispatch closure: per-thread entropy makes the parallel
/// schedule observable and the transcript nondeterministic.
pub fn par_rng(pool: &Pool, xs: &[u64]) -> Vec<u64> {
    // taint-expect: D-PAR
    pool.map(xs, 8, |_, x| x.wrapping_add(rng.gen_range(0..2)))
}

/// Channel I/O inside a dispatch closure: message order would depend on
/// thread interleaving.
pub fn par_channel(pool: &Pool, ch: &mut Channel, xs: &[u64]) -> Vec<u64> {
    // taint-expect: D-PAR
    pool.map(xs, 8, |_, x| { ch.send(vec![*x as u8]); *x })
}

/// Clock reads inside a dispatch closure: timing-dependent results.
pub fn par_clock(pool: &Pool, xs: &[u64]) -> Vec<u64> {
    // taint-expect: D-PAR
    pool.map(xs, 8, |_, x| x.wrapping_add(Instant::now().elapsed().as_nanos() as u64))
}

/// Clean twin: pure arithmetic on the chunk index and element — the only
/// things a dispatch closure may depend on.
pub fn par_clean(pool: &Pool, xs: &[u64]) -> Vec<u64> {
    pool.map(xs, 8, |i, x| x.wrapping_mul(i as u64 + 1))
}

/// Clean twin: channel I/O in the *serial* glue between dispatches is
/// fine; only the closures themselves are parallel sections.
pub fn serial_io_between_dispatches(pool: &Pool, ch: &mut Channel, xs: &[u64]) -> Vec<u64> {
    let doubled = pool.map(xs, 8, |_, x| x.wrapping_mul(2));
    ch.send(vec![doubled.len() as u8]);
    pool.map(&doubled, 8, |_, x| x.wrapping_add(1))
}
