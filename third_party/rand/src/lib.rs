//! Offline stand-in for the `rand` 0.8 API surface this workspace uses,
//! substituted via `[patch.crates-io]` so the whole workspace builds and
//! tests on machines with no crates.io access. StdRng here is SplitMix64
//! (deterministic, seedable); every protocol in this workspace needs only
//! a seedable deterministic stream, never rand's specific ChaCha output —
//! all test expectations are derived from protocol self-consistency, not
//! from fixed RNG vectors.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
    fn fill<T: FillSlice + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}
impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range");
                low.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64, _inclusive: bool) -> f64 {
        low + f64::sample(rng) * (high - low)
    }
}

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (s, e) = self.into_inner();
        T::sample_in(rng, s, e, true)
    }
}

pub trait FillSlice {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl FillSlice for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

macro_rules! fill_wide {
    ($($t:ty),*) => {$(
        impl FillSlice for [$t] {
            fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
                for v in self.iter_mut() {
                    *v = rng.next_u64() as $t;
                }
            }
        }
    )*};
}
fill_wide!(u16, u32, u64);

impl<const N: usize> FillSlice for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(t)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 stand-in for rand's StdRng.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
        buf: u64,
        have: u32,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.have >= 4 {
                self.have -= 4;
                let v = self.buf as u32;
                self.buf >>= 32;
                return v;
            }
            let w = self.next_u64();
            self.buf = w >> 32;
            self.have = 4;
            w as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let b = self.next_u64().to_le_bytes();
                let n = rem.len();
                rem.copy_from_slice(&b[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                state = state
                    .rotate_left(23)
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(u64::from_le_bytes(b));
            }
            StdRng {
                state,
                buf: 0,
                have: 0,
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub fn random<T: Standard>() -> T {
    use rngs::StdRng;
    T::sample(&mut <StdRng as SeedableRng>::from_entropy())
}

pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}
