//! Offline stand-in for the `rand` 0.8 API surface this workspace uses,
//! substituted via a path dependency so the whole workspace builds and
//! tests on machines with no crates.io access.
//!
//! `StdRng` is a real CSPRNG: ChaCha20 keyed by the full 256-bit seed
//! (the real rand 0.8 `StdRng` is ChaCha12). This is load-bearing, not a
//! test convenience — `secyan_crypto::Prg` expands garbled-circuit wire
//! labels, OT extension masks, and OSN masks through `StdRng`, and
//! `secyan_core::Session` draws base-OT and KKRT randomness from it, so a
//! predictable generator here would void the protocol's security claims
//! on every build of this workspace. The keystream does not match rand's
//! ChaCha12 output word-for-word (all test expectations are derived from
//! protocol self-consistency, not fixed RNG vectors); the security
//! properties are what must hold, and do.
//!
//! `from_entropy` (and `thread_rng`/`random`) read OS entropy from
//! `/dev/urandom` and panic if no OS entropy source exists, rather than
//! silently degrading to a time-based seed.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
    fn fill<T: FillSlice + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}
impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range");
                low.wrapping_add((u128::sample(rng) % span) as $t)
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64, _inclusive: bool) -> f64 {
        low + f64::sample(rng) * (high - low)
    }
}

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (s, e) = self.into_inner();
        T::sample_in(rng, s, e, true)
    }
}

pub trait FillSlice {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl FillSlice for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

macro_rules! fill_wide {
    ($($t:ty),*) => {$(
        impl FillSlice for [$t] {
            fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
                for v in self.iter_mut() {
                    *v = rng.next_u64() as $t;
                }
            }
        }
    )*};
}
fill_wide!(u16, u32, u64);

impl<const N: usize> FillSlice for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        fill_os_entropy(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// Fill `dest` from the OS entropy source. Panics when none is available:
/// a secret RNG seeded from a guessable fallback (time, pid) would be a
/// silent security failure, so this fails closed instead.
fn fill_os_entropy(dest: &mut [u8]) {
    use std::io::Read;
    std::fs::File::open("/dev/urandom")
        .and_then(|mut f| f.read_exact(dest))
        .expect("rand stand-in: /dev/urandom unavailable; seed explicitly instead of from_entropy")
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// ChaCha20 CSPRNG standing in for rand 0.8's `StdRng` (ChaCha12).
    ///
    /// The full 256-bit seed is the ChaCha key; the stream is the ChaCha20
    /// keystream over a 64-bit block counter with a zero nonce (DJB's
    /// original variant). 2^64 blocks of 64 bytes is unreachable, so the
    /// counter never wraps into nonce reuse.
    #[derive(Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u8; 64],
        /// Bytes of `buf` already consumed; 64 means the buffer is empty.
        pos: usize,
    }

    // The key and buffered keystream are secret; keep them out of debug
    // output (`Session` and `Prg` hold an StdRng inside Debug-able types).
    impl core::fmt::Debug for StdRng {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("StdRng").finish_non_exhaustive()
        }
    }

    #[inline(always)]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn chacha20_block(key: &[u32; 8], counter: u64) -> [u8; 64] {
        let mut init = [0u32; 16];
        // "expand 32-byte k"
        init[0] = 0x6170_7865;
        init[1] = 0x3320_646e;
        init[2] = 0x7962_2d32;
        init[3] = 0x6b20_6574;
        init[4..12].copy_from_slice(key);
        init[12] = counter as u32;
        init[13] = (counter >> 32) as u32;
        // init[14], init[15]: zero nonce.
        let mut s = init;
        for _ in 0..10 {
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for (i, chunk) in out.chunks_exact_mut(4).enumerate() {
            chunk.copy_from_slice(&s[i].wrapping_add(init[i]).to_le_bytes());
        }
        out
    }

    impl StdRng {
        /// Ensure at least `need` unconsumed bytes are buffered, discarding
        /// any shorter tail so multi-byte reads never straddle blocks.
        #[inline]
        fn refill_if_short(&mut self, need: usize) {
            if 64 - self.pos < need {
                self.buf = chacha20_block(&self.key, self.counter);
                self.counter += 1;
                self.pos = 0;
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.refill_if_short(4);
            let mut b = [0u8; 4];
            b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
            self.pos += 4;
            u32::from_le_bytes(b)
        }
        fn next_u64(&mut self) -> u64 {
            self.refill_if_short(8);
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
            self.pos += 8;
            u64::from_le_bytes(b)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut filled = 0;
            while filled < dest.len() {
                self.refill_if_short(1);
                let take = (dest.len() - filled).min(64 - self.pos);
                dest[filled..filled + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
                self.pos += take;
                filled += take;
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                let mut b = [0u8; 4];
                b.copy_from_slice(chunk);
                *k = u32::from_le_bytes(b);
            }
            StdRng {
                key,
                counter: 0,
                buf: [0u8; 64],
                pos: 64,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// Known-answer test: with an all-zero key, counter 0, zero nonce,
        /// every ChaCha20 variant (DJB original and RFC 8439) produces the
        /// same first block; check our keystream against the published
        /// vector so the implementation is pinned to real ChaCha20.
        #[test]
        fn chacha20_zero_key_known_answer() {
            let mut rng = StdRng::from_seed([0u8; 32]);
            let mut out = [0u8; 32];
            rng.fill_bytes(&mut out);
            let expected = [
                0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
                0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
                0x8b, 0x77, 0x0d, 0xc7,
            ];
            assert_eq!(out, expected);
        }

        #[test]
        fn deterministic_and_read_width_consistent() {
            let mut a = StdRng::from_seed([7u8; 32]);
            let mut b = StdRng::from_seed([7u8; 32]);
            let mut bytes = [0u8; 8];
            a.fill_bytes(&mut bytes);
            assert_eq!(u64::from_le_bytes(bytes), b.next_u64());
            assert_eq!(a.next_u32(), b.next_u32());
            assert_eq!(a.next_u64(), b.next_u64());
        }

        /// Distinct seeds must give independent streams — in particular
        /// seeds that collide under any 64-bit fold of the seed bytes.
        #[test]
        fn full_seed_is_significant() {
            for byte in 0..32 {
                let mut s = [0u8; 32];
                s[byte] = 1;
                let mut flipped = StdRng::from_seed(s);
                let mut zero = StdRng::from_seed([0u8; 32]);
                assert_ne!(flipped.next_u64(), zero.next_u64(), "byte {byte} ignored");
            }
        }

        #[test]
        fn from_entropy_draws_os_entropy() {
            use super::super::SeedableRng;
            let mut a = StdRng::from_entropy();
            let mut b = StdRng::from_entropy();
            // 128-bit collision between two OS-entropy seeds: never.
            assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub fn random<T: Standard>() -> T {
    use rngs::StdRng;
    T::sample(&mut <StdRng as SeedableRng>::from_entropy())
}

pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}
