//! Offline stand-in for the `criterion` 0.5 API surface this workspace's
//! benches use. Each benchmark runs a short timed loop and prints a
//! median-ish per-iteration time; there is no statistical machinery, no
//! HTML report, and no command-line parsing. The point is that
//! `cargo bench` (and `cargo test --benches`) compile and run in
//! environments with no crates.io access; real measurements should use the
//! genuine criterion on a networked machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-shaped hint black box. Uses the stable `std::hint` version,
/// which is what criterion 0.5 itself forwards to on recent toolchains.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (recorded, echoed in the printout).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Timing loop driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the timed loop.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        black_box(f(setup()));
        let start = Instant::now();
        for _ in 0..self.iters {
            let s = setup();
            black_box(f(s));
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: &'a Config,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let iters = self.iters();
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, iters, b.elapsed);
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let iters = self.iters();
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, iters, b.elapsed);
        self
    }

    pub fn finish(self) {}

    fn iters(&self) -> u64 {
        (self.sample_size.min(self.config.sample_size)).max(1) as u64
    }

    fn report(&self, id: &BenchmarkId, iters: u64, elapsed: Duration) {
        let per_iter = elapsed.checked_div(iters as u32).unwrap_or(Duration::ZERO);
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  [{n} elems/iter]"),
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                format!("  [{n} bytes/iter]")
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {per_iter:?}/iter over {iters} iters{tp}",
            self.name
        );
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
}

/// The benchmark driver. The stand-in keeps only the knobs the workspace
/// touches (`sample_size`); everything else is accepted and ignored.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            config: Config { sample_size: 10 },
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: &self.config,
            sample_size: self.config.sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        self.benchmark_group("bench")
            .bench_function(BenchmarkId::from(id), f);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
