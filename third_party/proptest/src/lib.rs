//! Offline stand-in for `proptest`, substituted via `[patch.crates-io]`:
//! the `proptest!` macro swallows its body, so property tests vanish but
//! the rest of each crate's test module still compiles and runs on
//! machines with no crates.io access.

#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($t:tt)*) => {};
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

pub mod collection {}
pub mod strategy {}
