//! Offline stand-in for `proptest` 1.x covering the API surface this
//! workspace uses — but a *working* miniature, not a no-op: `proptest!`
//! compiles each property into a real `#[test]` that runs the body for
//! `ProptestConfig::cases` inputs drawn from the declared strategies with
//! a deterministic RNG (seeded from the test's module path and name, so
//! every run replays the same cases). No shrinking, no persistence of
//! failing seeds — a failing case's inputs are stable across runs, which
//! is the part of proptest these suites actually rely on.
//!
//! Defaults differ from the real crate in one visible way: `cases` is 32
//! rather than 256, keeping the offline CI suite fast; per-block
//! `#![proptest_config(...)]` overrides work as usual.

// Strategy trait objects mirror the real crate's signatures verbatim.
#![allow(clippy::type_complexity)]

/// Configuration for a `proptest!` block. Only `cases` is modelled.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

pub mod test_runner {
    /// Deterministic test-input generator (SplitMix64). This RNG produces
    /// *public test inputs*, never secret material — the workspace's
    /// cryptographic randomness comes from the `rand` stand-in's ChaCha20
    /// `StdRng`, not from here.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's identity (FNV-1a over the name), so each
        /// property gets its own stream and every run replays it.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u128(&mut self) -> u128 {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        }

        /// Uniform draw in `[0, span)`. Modulo bias over a 128-bit draw is
        /// negligible for test-input spans.
        pub fn below(&mut self, span: u128) -> u128 {
            assert!(span > 0, "empty range strategy");
            self.next_u128() % span
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`. The stand-in keeps only the
    /// generation half of proptest's Strategy (no value trees/shrinking).
    pub trait Strategy {
        type Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among strategies with a common value type; backs
    /// `prop_oneof!` (weights, if given, are ignored).
    pub struct Union<T> {
        variants: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        pub fn new(variants: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Union<T> {
            assert!(
                !variants.is_empty(),
                "prop_oneof! needs at least one variant"
            );
            Union { variants }
        }
    }

    /// Erase a strategy into the closure form `Union` stores.
    pub fn boxed<S>(s: S) -> Box<dyn Fn(&mut TestRng) -> S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.new_value(rng))
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len() as u128) as usize;
            (self.variants[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    let span = (e as i128 - s as i128) as u128 + 1;
                    s.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            rng.next_u128()
        }
    }
    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            rng.next_u128() as i128
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy: uniform over T's whole domain.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Size bound for collection strategies; built from the range forms
    /// the workspace uses.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_inclusive - self.lo) as u128 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            // Duplicates don't grow the set; bound the attempts so a small
            // element domain yields a smaller set instead of spinning.
            for _ in 0..(20 * n + 100) {
                if out.len() == n {
                    break;
                }
                out.insert(self.element.new_value(rng));
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Compile a block of properties into `#[test]` functions that run each
/// body for `cases` deterministic inputs. Supports the real macro's
/// grammar as used in this workspace: an optional leading
/// `#![proptest_config(EXPR)]`, then items of the form
/// `ATTRS fn name(pat in strategy, ident: Type, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind! { __rng $($params)* }
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ( $rng:ident ) => {};
    ( $rng:ident $pat:pat in $strat:expr, $($rest:tt)* ) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng $($rest)* }
    };
    ( $rng:ident $pat:pat in $strat:expr ) => {
        let $pat = $crate::strategy::Strategy::new_value(&($strat), &mut $rng);
    };
    ( $rng:ident $var:ident : $ty:ty, $($rest:tt)* ) => {
        let $var: $ty =
            $crate::strategy::Strategy::new_value(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng $($rest)* }
    };
    ( $rng:ident $var:ident : $ty:ty ) => {
        let $var: $ty =
            $crate::strategy::Strategy::new_value(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ( $($weight:expr => $s:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![ $( { let _ = $weight; $crate::strategy::boxed($s) } ),+ ])
    };
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($s) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    /// The stand-in's own contract: bodies actually execute `cases` times.
    #[test]
    fn properties_actually_run() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static RUNS: AtomicU32 = AtomicU32::new(0);

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(7))]
            #[allow(unused)]
            fn counted(x in 0u64..10, y: u32) {
                prop_assert!(x < 10);
                RUNS.fetch_add(1, Ordering::Relaxed);
            }
        }
        counted();
        assert_eq!(RUNS.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = Strategy::new_value(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::new_value(&(1i64..=64), &mut rng);
            assert!((1..=64).contains(&w));
        }
        // Full-width inclusive range must not overflow the span math.
        let f = Strategy::new_value(&(0u64..=u64::MAX), &mut rng);
        let _ = f;
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::deterministic("collections_hit_requested_sizes");
        for _ in 0..100 {
            let v = Strategy::new_value(&crate::collection::vec(0usize..5, 2..9), &mut rng);
            assert!((2..9).contains(&v.len()));
            let s =
                Strategy::new_value(&crate::collection::hash_set(any::<u64>(), 1..50), &mut rng);
            assert!((1..50).contains(&s.len()));
        }
    }

    #[test]
    fn prop_map_and_oneof_compose() {
        let mut rng = TestRng::deterministic("prop_map_and_oneof_compose");
        let doubled = (0u64..10).prop_map(|v| v * 2);
        let either = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..100 {
            assert_eq!(Strategy::new_value(&doubled, &mut rng) % 2, 0);
            assert!(matches!(Strategy::new_value(&either, &mut rng), 1 | 2));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other-name");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
