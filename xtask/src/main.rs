//! Workspace automation entry point: `cargo xtask <command>`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{
    check_fixtures, diff_baseline, find_workspace_root, lint_workspace, parse_baseline,
    render_baseline,
};

const USAGE: &str = "\
Usage: cargo xtask ct-lint [options]

Secret-hygiene static analysis over the workspace sources.

Options:
  --update-baseline   rewrite ct-lint.allow from the current findings
  --fixtures          self-test against tests/ct_lint_fixtures annotations
  --root <dir>        workspace root (default: auto-detected)

Exit codes: 0 clean, 1 findings (or fixture mismatch), 2 usage/IO error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if cmd != "ct-lint" {
        eprintln!("unknown command `{cmd}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut update = false;
    let mut fixtures = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--update-baseline" => update = true,
            "--fixtures" => fixtures = true,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root_arg.or_else(|| {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        find_workspace_root(here.parent().unwrap_or(&here))
    });
    let Some(root) = root else {
        eprintln!("ct-lint: could not locate the workspace root");
        return ExitCode::from(2);
    };

    if fixtures {
        let dir = root.join("tests/ct_lint_fixtures");
        return match check_fixtures(&dir) {
            Ok(problems) if problems.is_empty() => {
                println!("ct-lint fixtures: all seeded violations caught, no false positives");
                ExitCode::SUCCESS
            }
            Ok(problems) => {
                for p in &problems {
                    eprintln!("ct-lint fixtures: {p}");
                }
                eprintln!("ct-lint fixtures: {} problem(s)", problems.len());
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("ct-lint fixtures: {e}");
                ExitCode::from(2)
            }
        };
    }

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ct-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join("ct-lint.allow");
    if update {
        let body = render_baseline(&findings);
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!("ct-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "ct-lint: wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => {
            eprintln!("ct-lint: reading {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let diff = diff_baseline(findings, &baseline);
    for k in &diff.stale {
        eprintln!("ct-lint: stale baseline entry (prune it): {k}");
    }
    if diff.new.is_empty() {
        println!(
            "ct-lint: clean ({} baselined exception(s))",
            baseline.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }
    for f in &diff.new {
        eprintln!("{} {}:{}: {}", f.rule, f.path, f.line, f.snippet);
    }
    eprintln!(
        "ct-lint: {} new finding(s). Fix with the ct_eq/ct_select/Secret APIs in \
         secyan-crypto::secret, suppress a reviewed exception with an inline \
         `// ct-ok: <reason>`, or (for bulk legacy code) re-run with \
         --update-baseline and justify the diff in review.",
        diff.new.len()
    );
    ExitCode::from(1)
}
