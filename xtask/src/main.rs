//! Workspace automation entry point: `cargo xtask <command>`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::taint::TaintConfig;
use xtask::{
    check_fixtures, check_taint_fixtures, diff_baseline, find_workspace_root, lint_workspace,
    parse_baseline, render_baseline, sarif, taint_workspace,
};

const USAGE: &str = "\
Usage: cargo xtask <ct-lint|taint> [options]

Secret-hygiene static analysis over the workspace sources.

  ct-lint   token-level constant-time rules (R-EQ, R-BRANCH, R-DEBUG,
            R-INDEX, R-UNSAFE), baseline ct-lint.allow
  taint     intraprocedural secret-taint dataflow + communication-shape
            rules (T-BRANCH, T-LOOP, T-INDEX, T-COMM, D-PAR), baseline
            taint.allow

Options:
  --update-baseline   rewrite the command's .allow file from current findings
  --fixtures          self-test against the command's fixture annotations
  --root <dir>        workspace root (default: auto-detected)
  --sarif <path>      also write findings as SARIF 2.1.0 (for CI upload)
  --source <name>     (taint) add a taint-source function name; repeatable

Exit codes: 0 clean, 1 findings / stale baseline / fixture mismatch,
2 usage or IO error.";

struct Opts {
    update: bool,
    fixtures: bool,
    root: Option<PathBuf>,
    sarif: Option<PathBuf>,
    extra_sources: Vec<String>,
}

fn parse_opts(args: &[String], taint_mode: bool) -> Result<Opts, String> {
    let mut opts = Opts {
        update: false,
        fixtures: false,
        root: None,
        sarif: None,
        extra_sources: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--update-baseline" => opts.update = true,
            "--fixtures" => opts.fixtures = true,
            "--root" => match it.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return Err("--root needs a path".into()),
            },
            "--sarif" => match it.next() {
                Some(p) => opts.sarif = Some(PathBuf::from(p)),
                None => return Err("--sarif needs a path".into()),
            },
            "--source" if taint_mode => match it.next() {
                Some(s) => opts.extra_sources.push(s.clone()),
                None => return Err("--source needs a function name".into()),
            },
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let taint_mode = match cmd {
        "ct-lint" => false,
        "taint" => true,
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let opts = match parse_opts(&args[1..], taint_mode) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = opts.root.clone().or_else(|| {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        find_workspace_root(here.parent().unwrap_or(&here))
    });
    let Some(root) = root else {
        eprintln!("{cmd}: could not locate the workspace root");
        return ExitCode::from(2);
    };

    let mut cfg = TaintConfig::default();
    cfg.sources.extend(opts.extra_sources.iter().cloned());

    // Tool-specific wiring: fixture directory, baseline file, suppression
    // tag, and the remediation hint printed on failure.
    let (fixture_dir, baseline_file, ok_tag, hint) = if taint_mode {
        (
            "tests/taint_fixtures",
            "taint.allow",
            "taint-ok:",
            "Route the length through public shape metadata (QueryShape / \
             declared sizes), pad to a public bound, or suppress a reviewed \
             exception with an inline `// taint-ok: <reason>`.",
        )
    } else {
        (
            "tests/ct_lint_fixtures",
            "ct-lint.allow",
            "ct-ok:",
            "Fix with the ct_eq/ct_select/Secret APIs in secyan-crypto::secret, \
             suppress a reviewed exception with an inline `// ct-ok: <reason>`, \
             or (for bulk legacy code) re-run with --update-baseline and \
             justify the diff in review.",
        )
    };

    if opts.fixtures {
        let dir = root.join(fixture_dir);
        let result = if taint_mode {
            check_taint_fixtures(&dir, &cfg)
        } else {
            check_fixtures(&dir)
        };
        return match result {
            Ok(problems) if problems.is_empty() => {
                println!("{cmd} fixtures: all seeded violations caught, no false positives");
                ExitCode::SUCCESS
            }
            Ok(problems) => {
                for p in &problems {
                    eprintln!("{cmd} fixtures: {p}");
                }
                eprintln!("{cmd} fixtures: {} problem(s)", problems.len());
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("{cmd} fixtures: {e}");
                ExitCode::from(2)
            }
        };
    }

    let findings = if taint_mode {
        taint_workspace(&root, &cfg)
    } else {
        lint_workspace(&root)
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{cmd}: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join(baseline_file);
    if opts.update {
        let body = render_baseline(cmd, ok_tag, &findings);
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!("{cmd}: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "{cmd}: wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Default::default(),
        Err(e) => {
            eprintln!("{cmd}: reading {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let diff = diff_baseline(findings, &baseline);

    if let Some(path) = &opts.sarif {
        let doc = sarif::render(&format!("secyan-{cmd}"), &diff.new);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("{cmd}: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("{cmd}: wrote SARIF to {}", path.display());
    }

    // Stale entries are a hard failure: the baseline must describe the code
    // as it is, or the diff it tolerates silently drifts.
    for k in &diff.stale {
        eprintln!("{cmd}: stale {baseline_file} entry matches nothing (prune it): {k}");
    }
    if diff.new.is_empty() && diff.stale.is_empty() {
        println!(
            "{cmd}: clean ({} baselined exception(s))",
            baseline.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }
    for f in &diff.new {
        eprintln!("{} {}:{}: {}", f.rule, f.path, f.line, f.snippet);
    }
    if !diff.new.is_empty() {
        eprintln!("{cmd}: {} new finding(s). {hint}", diff.new.len());
    }
    if !diff.stale.is_empty() {
        eprintln!(
            "{cmd}: {} stale baseline entr(ies) — regenerate with --update-baseline \
             or delete the dead lines.",
            diff.stale.len()
        );
    }
    ExitCode::from(1)
}
