//! The ct-lint rule passes.
//!
//! Five rules, each a line-local pattern over the scanned channels of a
//! source file (see [`crate::lexer`]):
//!
//! - **R-EQ** — `==` / `!=` (or a derived `PartialEq`) touching a
//!   secret-bearing identifier. Variable-time equality on key material is
//!   the classic comparison side channel; use `CtEq::ct_eq`.
//! - **R-BRANCH** — `if` / `while` / `match` whose condition mentions a
//!   secret-bearing identifier. Control flow on secrets leaks through the
//!   branch predictor and instruction cache; use `CtChoice` masks or
//!   `CtSelect::ct_select`.
//! - **R-DEBUG** — `{:?}` formatting, `dbg!`, or a derived `Debug` reaching
//!   a secret-bearing identifier or type. Key material must never hit logs.
//! - **R-INDEX** — array/table access with a data-dependent index inside
//!   `crates/crypto` (cache-timing channel; flags the table-based software
//!   AES fallback explicitly) or a secret-marker index anywhere in the
//!   crypto stack.
//! - **R-UNSAFE** — `unsafe` without a `// SAFETY:` (or `# Safety` doc)
//!   comment within the three preceding lines.
//!
//! Rules R-EQ/R-BRANCH/R-DEBUG/R-INDEX skip `#[cfg(test)]` / `#[test]`
//! regions — tests may compare, print, and branch on anything. R-UNSAFE
//! applies everywhere, tests included.
//!
//! Suppression: a `ct-ok: <reason>` comment on the finding line or the line
//! above acknowledges a reviewed, justified exception inline. Bulk legacy
//! exceptions belong in the `ct-lint.allow` baseline instead.

use crate::lexer::{ident_words, identifiers, ScannedFile};

/// Identifier words that mark a value as secret-bearing. An identifier
/// matches if any of its snake/camel-case words equals a marker (so
/// `wire_label`, `input_zero_labels`, and `KkrtSenderKey` all match).
///
/// Deliberately conservative: single-letter secrets (`s`, `c`) evade the
/// heuristic — naming secrets descriptively is part of the discipline this
/// lint enforces (see DESIGN.md).
pub const SECRET_MARKERS: &[&str] = &[
    "label", "labels", "seed", "seeds", "delta", "pad", "pads", "share", "shares", "choice",
    "choices", "secret", "secrets", "key", "keys",
];

/// Crates whose non-test code is subject to the secret-value rules
/// (R-EQ, R-BRANCH, R-DEBUG, marker-indexed R-INDEX).
pub const SECRET_SCOPE: &[&str] = &[
    "crates/crypto/",
    "crates/ot/",
    "crates/gc/",
    "crates/psi/",
    "crates/oep/",
];

/// One lint finding, keyed for baseline matching by (rule, path, snippet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `R-EQ`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (display only; not part of the baseline key, so
    /// unrelated edits shifting lines do not invalidate the baseline).
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl Finding {
    /// Baseline key: rule + path + whitespace-normalized snippet.
    pub fn key(&self) -> String {
        let normalized: String = self
            .snippet
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        format!("{}\t{}\t{}", self.rule, self.path, normalized)
    }
}

/// Does `path` (workspace-relative, `/`-separated) fall in the secret scope?
fn in_secret_scope(path: &str) -> bool {
    SECRET_SCOPE.iter().any(|p| path.starts_with(p))
}

/// Identifiers on a code line that carry a secret marker word, excluding
/// identifiers only used for their public size (`x.len()`, `x.is_empty()`,
/// `x.capacity()`).
fn secret_idents(code_line: &str) -> Vec<String> {
    let ids = identifiers(code_line);
    let mut out = Vec::new();
    for (pos, id) in &ids {
        // ALL-CAPS identifiers are consts — compile-time public parameters
        // (ROUND_KEYS, KAPPA), never runtime secrets.
        if id
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        {
            continue;
        }
        if !ident_words(id)
            .iter()
            .any(|w| SECRET_MARKERS.contains(&w.as_str()))
        {
            continue;
        }
        let rest = &code_line[pos + id.len()..];
        let rest = rest.trim_start();
        if rest.starts_with(".len(")
            || rest.starts_with(".is_empty(")
            || rest.starts_with(".capacity(")
        {
            continue;
        }
        out.push(id.clone());
    }
    out
}

/// True if a `ct-ok:` suppression comment covers line `i`: on the line
/// itself, or anywhere in the contiguous run of comment/attribute lines
/// directly above it (multi-line justifications are encouraged).
fn suppressed(scan: &ScannedFile, i: usize) -> bool {
    let hit = |j: usize| scan.comments.get(j).is_some_and(|c| c.contains("ct-ok:"));
    if hit(i) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code_above = scan.code[j].trim();
        if !(code_above.is_empty() || code_above.starts_with("#[")) {
            return false;
        }
        if hit(j) {
            return true;
        }
    }
    false
}

/// Find the name of the struct/enum a `#[derive(...)]` on line `i` applies
/// to, looking at most 4 code lines ahead (other attributes may intervene).
fn derived_type_name(scan: &ScannedFile, i: usize) -> Option<String> {
    for line in scan.code.iter().skip(i).take(5) {
        let ids: Vec<String> = identifiers(line).into_iter().map(|(_, s)| s).collect();
        for w in ids.windows(2) {
            if w[0] == "struct" || w[0] == "enum" || w[0] == "union" {
                return Some(w[1].clone());
            }
        }
    }
    None
}

/// Extract a branch condition: text after the keyword up to the opening
/// brace (or end of line — conditions spanning lines are checked line by
/// line as each continuation still carries the identifiers).
fn condition_after(code_line: &str, kw_end: usize) -> &str {
    let rest = &code_line[kw_end..];
    match rest.find('{') {
        Some(b) => &rest[..b],
        None => rest,
    }
}

/// Byte offsets just past each word-boundary occurrence of `kw`.
fn keyword_ends(code_line: &str, kw: &str) -> Vec<usize> {
    identifiers(code_line)
        .into_iter()
        .filter(|(_, id)| id == kw)
        .map(|(pos, _)| pos + kw.len())
        .collect()
}

/// Byte offsets of `==` / `!=` comparison operators (skipping `<=`, `>=`,
/// `=>`, and compound assignments, which never match the two-char probes).
fn comparison_ops(code_line: &str) -> Vec<usize> {
    let bytes = code_line.as_bytes();
    (0..bytes.len().saturating_sub(1))
        .filter(|&i| {
            (bytes[i] == b'=' || bytes[i] == b'!') && bytes[i + 1] == b'='
                // `!=` is a comparison; a bare `=` before `==` would be `===`,
                // which Rust has no lexing for — but guard anyway.
                && (i == 0 || bytes[i - 1] != b'=')
                && bytes.get(i + 2) != Some(&b'=')
        })
        .collect()
}

/// Is `s` a plain integer literal (decimal or hex, `_` separators ok)?
fn is_int_literal(s: &str) -> bool {
    let t = s.trim();
    if t.is_empty() {
        return false;
    }
    let t = t
        .strip_prefix("0x")
        .or_else(|| t.strip_prefix("0b"))
        .unwrap_or(t);
    t.chars().all(|c| c.is_ascii_hexdigit() || c == '_')
}

/// Run every rule over one scanned file. `raw_lines` are the original
/// source lines (for snippets).
pub fn lint_scanned(path: &str, scan: &ScannedFile, raw_lines: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    let secret_scope = in_secret_scope(path);
    let crypto_crate = path.starts_with("crates/crypto/");
    let snippet = |i: usize| {
        raw_lines
            .get(i)
            .map_or(String::new(), |l| l.trim().to_string())
    };
    let mut push = |rule: &'static str, i: usize| {
        out.push(Finding {
            rule,
            path: path.to_string(),
            line: i + 1,
            snippet: snippet(i),
        });
    };

    for i in 0..scan.code.len() {
        let code = &scan.code[i];
        if code.trim().is_empty() {
            continue;
        }
        let tests = scan.in_test[i];
        let skip = suppressed(scan, i);

        // R-UNSAFE: applies everywhere, tests included. A justification
        // counts if `SAFETY`/`Safety` appears in this line's comment or in
        // the contiguous run of comment/attribute lines directly above
        // (covering both `// SAFETY:` blocks and `/// # Safety` doc
        // sections ahead of an `unsafe fn`).
        if !skip && identifiers(code).iter().any(|(_, id)| id == "unsafe") {
            let has_marker = |j: usize| {
                scan.comments
                    .get(j)
                    .is_some_and(|c| c.contains("SAFETY") || c.contains("Safety"))
            };
            let mut justified = has_marker(i);
            let mut j = i;
            while !justified && j > 0 {
                j -= 1;
                let code_above = scan.code[j].trim();
                let is_annotation = code_above.is_empty() || code_above.starts_with("#[");
                if !is_annotation {
                    break;
                }
                justified = has_marker(j);
            }
            if !justified {
                push("R-UNSAFE", i);
            }
        }

        if tests || skip || !secret_scope {
            continue;
        }

        let secrets = secret_idents(code);

        // R-EQ: comparison operators touching secret identifiers. Each
        // operator is checked against its own statement segment (bounded by
        // `;`/`{`/`}`) so identifiers elsewhere on the line — e.g. a fn
        // signature sharing the line with its body — don't contaminate it.
        for op in comparison_ops(code) {
            let start = code[..op].rfind(['{', '}', ';']).map_or(0, |p| p + 1);
            let end = code[op..]
                .find(['{', '}', ';'])
                .map_or(code.len(), |p| op + p);
            if !secret_idents(&code[start..end]).is_empty() {
                push("R-EQ", i);
                break;
            }
        }
        // R-EQ: derived PartialEq on a secret-named type.
        if code.contains("derive") && code.contains("PartialEq") {
            if let Some(name) = derived_type_name(scan, i) {
                if ident_words(&name)
                    .iter()
                    .any(|w| SECRET_MARKERS.contains(&w.as_str()))
                {
                    push("R-EQ", i);
                }
            }
        }

        // R-BRANCH: control flow conditioned on secret identifiers.
        for kw in ["if", "while", "match"] {
            let mut hit = false;
            for end in keyword_ends(code, kw) {
                let cond = condition_after(code, end);
                if !secret_idents(cond).is_empty() {
                    hit = true;
                }
            }
            if hit {
                push("R-BRANCH", i);
                break;
            }
        }

        // R-DEBUG: Debug formatting of secret identifiers or types.
        let debug_fmt = scan.strings[i].contains("{:?}")
            || scan.strings[i].contains("{:#?}")
            || scan.strings[i].contains(":?}")
            || code.contains("dbg!");
        if debug_fmt && !secrets.is_empty() {
            push("R-DEBUG", i);
        }
        if code.contains("derive") && code.contains("Debug") {
            if let Some(name) = derived_type_name(scan, i) {
                if ident_words(&name)
                    .iter()
                    .any(|w| SECRET_MARKERS.contains(&w.as_str()))
                {
                    push("R-DEBUG", i);
                }
            }
        }

        // R-INDEX: data-dependent table lookups.
        //  (a) in crates/crypto, any ALL-CAPS const table indexed by a
        //      non-literal — the software AES S-box/T-tables land here;
        //  (b) anywhere in the secret scope, an index expression that
        //      itself mentions a secret identifier.
        for (pos, id) in identifiers(code) {
            let after = code[pos + id.len()..].trim_start();
            if !after.starts_with('[') {
                continue;
            }
            let idx_body = &after[1..after.find(']').unwrap_or(after.len())];
            let const_table = id.len() >= 2
                && id.chars().any(|c| c.is_ascii_uppercase())
                && id
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
            if crypto_crate
                && const_table
                && !is_int_literal(idx_body)
                && !idx_body.trim().is_empty()
            {
                push("R-INDEX", i);
                break;
            }
            if !secret_idents(idx_body).is_empty() {
                push("R-INDEX", i);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::ScannedFile;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        let scan = ScannedFile::scan(src);
        let raw: Vec<&str> = src.lines().collect();
        lint_scanned(path, &scan, &raw)
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn eq_on_secret_flagged() {
        let f = lint(
            "crates/ot/src/x.rs",
            "fn f(a_label: u64, b: u64) -> bool { a_label == b }",
        );
        assert_eq!(rules_of(&f), ["R-EQ"]);
    }

    #[test]
    fn eq_outside_scope_not_flagged() {
        let f = lint(
            "crates/relation/src/x.rs",
            "fn f(key: u64, b: u64) -> bool { key == b }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn eq_in_tests_not_flagged() {
        let f = lint(
            "crates/ot/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f(seed: u64) { assert!(seed == 3); }\n}\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn len_is_public() {
        let f = lint(
            "crates/ot/src/x.rs",
            "fn f(keys: &[u8]) { assert!(keys.len() == 4); }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn branch_on_secret_flagged() {
        let f = lint(
            "crates/gc/src/x.rs",
            "fn f(choice: bool) { if choice { g(); } }",
        );
        assert_eq!(rules_of(&f), ["R-BRANCH"]);
    }

    #[test]
    fn branch_on_public_not_flagged() {
        let f = lint(
            "crates/gc/src/x.rs",
            "fn f(n: usize) { if n == 0 { g(); } }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn derive_on_secret_type_flagged() {
        let f = lint(
            "crates/crypto/src/x.rs",
            "#[derive(Debug, Clone, PartialEq)]\npub struct WireLabel(u128);\n",
        );
        let mut r = rules_of(&f);
        r.sort();
        assert_eq!(r, ["R-DEBUG", "R-EQ"]);
    }

    #[test]
    fn debug_format_of_secret_flagged() {
        let f = lint(
            "crates/ot/src/x.rs",
            "fn f(pad: u128) { println!(\"pad = {:?}\", pad); }",
        );
        assert_eq!(rules_of(&f), ["R-DEBUG"]);
    }

    #[test]
    fn const_table_index_flagged_in_crypto() {
        let f = lint(
            "crates/crypto/src/x.rs",
            "fn f(x: u8) -> u8 { SBOX[x as usize] }",
        );
        assert_eq!(rules_of(&f), ["R-INDEX"]);
    }

    #[test]
    fn const_table_literal_index_ok() {
        let f = lint("crates/crypto/src/x.rs", "fn f() -> u32 { RCON[0] }");
        assert!(f.is_empty());
    }

    #[test]
    fn secret_index_flagged_in_scope() {
        let f = lint(
            "crates/ot/src/x.rs",
            "fn f(v: &[u8], choice: usize) -> u8 { v[choice] }",
        );
        assert_eq!(rules_of(&f), ["R-INDEX"]);
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let f = lint("crates/core/src/x.rs", "fn f() { unsafe { g() } }");
        assert_eq!(rules_of(&f), ["R-UNSAFE"]);
    }

    #[test]
    fn unsafe_with_safety_ok() {
        let f = lint(
            "crates/core/src/x.rs",
            "// SAFETY: g has no preconditions.\nfn f() { unsafe { g() } }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unsafe_flagged_even_in_tests() {
        let f = lint(
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f() { unsafe { g() } }\n}\n",
        );
        assert_eq!(rules_of(&f), ["R-UNSAFE"]);
    }

    #[test]
    fn ct_ok_suppresses() {
        let f = lint(
            "crates/ot/src/x.rs",
            "// ct-ok: public protocol seed, sent on the wire anyway.\nfn f(seed: u64) { if seed > 0 { g(); } }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn string_contents_do_not_fake_idents() {
        let f = lint(
            "crates/ot/src/x.rs",
            "fn f(x: u64) { h.update(b\"key-label\"); let y = x == 3; }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn finding_key_is_line_independent() {
        let a = Finding {
            rule: "R-EQ",
            path: "p.rs".into(),
            line: 3,
            snippet: "a ==  b".into(),
        };
        let b = Finding {
            rule: "R-EQ",
            path: "p.rs".into(),
            line: 9,
            snippet: "a == b".into(),
        };
        assert_eq!(a.key(), b.key());
    }
}
