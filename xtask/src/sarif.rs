//! Minimal SARIF 2.1.0 serialization for lint findings.
//!
//! Hand-rolled JSON (the linter builds with zero dependencies) covering
//! exactly the subset GitHub code scanning consumes: one run, one driver,
//! a rule table, and one result per finding with a physical location. CI
//! uploads the file via `github/codeql-action/upload-sarif`, which turns
//! each finding into an inline PR annotation.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// Escape a string for a JSON string literal body.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One-line descriptions for the rule table; unknown rules get a generic
/// description rather than being dropped.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "R-EQ" => "Variable-time equality on secret-bearing values",
        "R-BRANCH" => "Control flow conditioned on secret-bearing values",
        "R-DEBUG" => "Debug formatting of secret-bearing values",
        "R-INDEX" => "Data-dependent table lookup on secret-bearing values",
        "R-UNSAFE" => "unsafe without a SAFETY justification",
        "T-BRANCH" => "Branch condition tainted by a secret dataflow",
        "T-LOOP" => "Loop bound tainted by a secret dataflow",
        "T-INDEX" => "Index or slice bound tainted by a secret dataflow",
        "T-COMM" => "Message length tainted by a secret dataflow (communication shape)",
        "D-PAR" => "Nondeterministic capture in a parallel dispatch closure",
        _ => "Secret-hygiene finding",
    }
}

/// Render findings as a SARIF 2.1.0 document.
pub fn render(tool_name: &str, findings: &[Finding]) -> String {
    // Stable rule table: each distinct rule once, indexed.
    let mut rule_index: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        let next = rule_index.len();
        rule_index.entry(f.rule).or_insert(next);
    }
    let mut rules_json = Vec::new();
    for rule in rule_index.keys() {
        rules_json.push(format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            esc(rule),
            esc(rule_description(rule))
        ));
    }
    let mut results_json = Vec::new();
    for f in findings {
        let idx = rule_index[f.rule];
        results_json.push(format!(
            concat!(
                "{{\"ruleId\":\"{}\",\"ruleIndex\":{},\"level\":\"error\",",
                "\"message\":{{\"text\":\"{}: {}\"}},",
                "\"locations\":[{{\"physicalLocation\":{{",
                "\"artifactLocation\":{{\"uri\":\"{}\"}},",
                "\"region\":{{\"startLine\":{}}}}}}}]}}"
            ),
            esc(f.rule),
            idx,
            esc(rule_description(f.rule)),
            esc(&f.snippet),
            esc(&f.path),
            f.line.max(1)
        ));
    }
    format!(
        concat!(
            "{{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/",
            "Schemata/sarif-schema-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{",
            "\"tool\":{{\"driver\":{{\"name\":\"{}\",\"informationUri\":",
            "\"https://github.com/secyan/secyan\",\"rules\":[{}]}}}},",
            "\"results\":[{}]}}]}}\n"
        ),
        esc(tool_name),
        rules_json.join(","),
        results_json.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shape() {
        let f = Finding {
            rule: "T-COMM",
            path: "crates/ot/src/iknp.rs".into(),
            line: 12,
            snippet: "let buf = vec![0u8; n]; // \"quote\"".into(),
        };
        let s = render("secyan-taint", &[f]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"T-COMM\""));
        assert!(s.contains("\"startLine\":12"));
        assert!(s.contains("\\\"quote\\\""));
        // Balanced braces as a cheap well-formedness check (no braces in
        // the escaped content here).
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_findings_render() {
        let s = render("secyan-taint", &[]);
        assert!(s.contains("\"results\":[]"));
    }
}
