//! A lightweight token-level parser on top of [`crate::lexer`].
//!
//! The taint pass (see [`crate::taint`]) needs more structure than the
//! line-local ct-lint rules: function boundaries, parameter lists, `let`
//! bindings and assignments with their right-hand sides, and delimiter
//! matching for call arguments and index expressions. This module supplies
//! exactly that — a flat token stream per file (built from the lexer's
//! comment-stripped, string-blanked code channel, so tokens never come from
//! literal or comment text) plus function/binding extraction.
//!
//! It is deliberately *not* a Rust grammar. Everything downstream is a
//! may-analysis: over-approximating an expression boundary costs a false
//! positive at worst (caught by the fixture self-test), never a panic.

use crate::lexer::ScannedFile;
use std::ops::Range;

/// One token: its 0-based source line and its text. Identifiers and number
/// literals are multi-char tokens; operators are greedily grouped (`==`,
/// `..=`, `<<=`, …); everything else is a single punctuation char.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// 0-based line index into the scanned file.
    pub line: usize,
    /// Token text.
    pub text: String,
}

impl Tok {
    /// Is this token an identifier or number (word-shaped)?
    pub fn is_word(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
    }
}

/// Multi-char operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenize the code channel of a scanned file. String/char literal bodies
/// were already blanked by the lexer, so a string literal appears as the
/// two-char token `""` and contributes no identifiers.
pub fn tokenize(scan: &ScannedFile) -> Vec<Tok> {
    let mut out = Vec::new();
    for (line, code) in scan.code.iter().enumerate() {
        let bytes = code.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < bytes.len() && {
                    let c = bytes[i] as char;
                    c.is_alphanumeric() || c == '_'
                } {
                    i += 1;
                }
                out.push(Tok {
                    line,
                    text: code[start..i].to_string(),
                });
                continue;
            }
            if c == '"' && bytes.get(i + 1) == Some(&b'"') {
                // Blanked string literal.
                out.push(Tok {
                    line,
                    text: "\"\"".to_string(),
                });
                i += 2;
                continue;
            }
            if let Some(op) = OPERATORS.iter().find(|op| code[i..].starts_with(*op)) {
                out.push(Tok {
                    line,
                    text: (*op).to_string(),
                });
                i += op.len();
                continue;
            }
            let ch_len = code[i..].chars().next().map_or(1, char::len_utf8);
            out.push(Tok {
                line,
                text: code[i..i + ch_len].to_string(),
            });
            i += ch_len;
        }
    }
    out
}

/// Given `toks[open]` an opening delimiter (`(`, `[`, or `{`), return the
/// index of its matching close, or `toks.len()` if unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return open,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.text == o {
            depth += 1;
        } else if t.text == c {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// Scan forward from `i` for the first token equal to `what` at delimiter
/// depth 0 relative to `i` (parens, brackets, and braces all count).
/// Returns `toks.len()` if not found before `end`.
pub fn find_at_depth0(toks: &[Tok], i: usize, end: usize, what: &[&str]) -> usize {
    let mut depth = 0i32;
    for j in i..end.min(toks.len()) {
        let t = toks[j].text.as_str();
        // Match before adjusting depth, so a search for an opener (`{`)
        // finds it at the depth where it *starts* a group.
        if depth == 0 && what.contains(&t) {
            return j;
        }
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return toks.len();
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    toks.len()
}

/// A parsed function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameter binding names (pattern identifiers, `self` excluded).
    pub params: Vec<String>,
    /// Token index range of the body, *inside* the braces.
    pub body: Range<usize>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
}

/// Extract every `fn` item (including nested ones — callers should mask
/// nested bodies out of enclosing ones via [`FnItem::body`] containment).
pub fn parse_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text != "fn" {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if !name_tok.is_word() {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = toks[i].line;
        // Skip generics to the parameter list.
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "(" => {
                        // `Fn(...)` bounds inside generics: skip the group.
                        j = matching_close(toks, j);
                    }
                    _ => {}
                }
                j += 1;
                if angle <= 0 {
                    break;
                }
            }
        }
        if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
            i += 1;
            continue;
        }
        let params_close = matching_close(toks, j);
        let params = param_names(&toks[j + 1..params_close.min(toks.len())]);
        // Find the body `{` (or `;` for a trait/extern declaration).
        let mut k = params_close + 1;
        let mut body = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                ";" => break,
                "(" | "[" => k = matching_close(toks, k),
                "{" => {
                    body = Some((k + 1)..matching_close(toks, k));
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if let Some(body) = body {
            let next = body.start;
            out.push(FnItem {
                name,
                params,
                body,
                line,
            });
            // Continue *inside* the body so nested fns are found too.
            i = next;
        } else {
            i = k;
        }
    }
    out
}

/// Words that appear in patterns/parameter lists but never bind values.
const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box", "self", "dyn", "impl", "_"];

/// Extract binding names from a parameter token slice: identifiers at
/// paren/bracket depth 0 that are directly followed by `:` (i.e. the
/// pattern side of `name: Type`), plus destructured names inside tuple
/// patterns (`(a, b): (T, U)`).
fn param_names(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    // `in_type` is true between a depth-0 `:` and the next depth-0 `,`.
    let mut in_type = false;
    for (j, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => in_type = true,
            "," if depth == 0 => in_type = false,
            _ => {
                if !in_type
                    && t.is_word()
                    && !PATTERN_KEYWORDS.contains(&t.text.as_str())
                    && !t.text.chars().next().is_some_and(|c| c.is_uppercase())
                    && !t.text.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && toks.get(j + 1).map(|n| n.text.as_str()) != Some("::")
                {
                    out.push(t.text.clone());
                }
            }
        }
    }
    out
}

/// Extract binding names from a pattern token slice (`let` patterns,
/// `for` patterns, `if let` patterns): lowercase identifiers that are not
/// keywords, not enum/struct constructors (uppercase), not paths.
pub fn pattern_names(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for (j, t) in toks.iter().enumerate() {
        if !t.is_word() || PATTERN_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let first = t.text.chars().next().unwrap_or('_');
        if first.is_uppercase() || first.is_ascii_digit() {
            continue;
        }
        // Skip path segments (`std::mem`) and struct field labels
        // (`Foo { field: pat }` — the label is followed by `:`).
        if toks.get(j + 1).map(|n| n.text.as_str()) == Some("::")
            || (j > 0 && toks[j - 1].text == "::")
        {
            continue;
        }
        if toks.get(j + 1).map(|n| n.text.as_str()) == Some(":") {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::ScannedFile;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&ScannedFile::scan(src))
    }

    #[test]
    fn tokenizes_operators_greedily() {
        let t = toks("a ..= b << c <<= d == e");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "..=", "b", "<<", "c", "<<=", "d", "==", "e"]);
    }

    #[test]
    fn strings_are_single_blank_tokens() {
        let t = toks("f(\"secret body\")");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["f", "(", "\"\"", ")"]);
    }

    #[test]
    fn lines_tracked() {
        let t = toks("a\nb\nc");
        assert_eq!(t[0].line, 0);
        assert_eq!(t[1].line, 1);
        assert_eq!(t[2].line, 2);
    }

    #[test]
    fn parses_simple_fn() {
        let t = toks("fn add(a: u32, b: u32) -> u32 { a + b }");
        let fns = parse_fns(&t);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "add");
        assert_eq!(fns[0].params, ["a", "b"]);
        let body: Vec<&str> = t[fns[0].body.clone()]
            .iter()
            .map(|x| x.text.as_str())
            .collect();
        assert_eq!(body, ["a", "+", "b"]);
    }

    #[test]
    fn parses_generic_fn_with_self() {
        let t = toks("impl X { fn go<T: Into<Vec<u8>>>(&mut self, seed: T) -> bool { true } }");
        let fns = parse_fns(&t);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "go");
        assert_eq!(fns[0].params, ["seed"]);
    }

    #[test]
    fn trait_decl_without_body_skipped() {
        let t = toks("trait T { fn a(&self); fn b(&self) -> u8 { 0 } }");
        let fns = parse_fns(&t);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "b");
    }

    #[test]
    fn nested_fn_found() {
        let t = toks("fn outer() { fn inner(x: u8) -> u8 { x } inner(1); }");
        let fns = parse_fns(&t);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // inner's body is contained in outer's.
        assert!(fns[0].body.start <= fns[1].body.start && fns[1].body.end <= fns[0].body.end);
    }

    #[test]
    fn tuple_params_destructure() {
        let t = toks("fn f((a, b): (u8, u8)) -> u8 { a ^ b }");
        let fns = parse_fns(&t);
        assert_eq!(fns[0].params, ["a", "b"]);
    }

    #[test]
    fn pattern_names_skip_constructors_and_paths() {
        let t = toks("Some(x)");
        assert_eq!(pattern_names(&t), ["x"]);
        let t = toks("Foo { len: n, .. }");
        assert_eq!(pattern_names(&t), ["n"]);
        let t = toks("(a, mut b)");
        assert_eq!(pattern_names(&t), ["a", "b"]);
    }

    #[test]
    fn matching_close_finds_balance() {
        let t = toks("f(a[1], g(2))");
        assert_eq!(matching_close(&t, 1), t.len() - 1);
    }
}
