//! Secret-taint dataflow analysis and communication-shape linting.
//!
//! Where ct-lint's rules are line-local patterns, this pass follows values:
//! an intraprocedural, flow-insensitive worklist propagation over the
//! bindings of each function. A `Secret::expose()` whose result flows
//! through two `let`s into a branch condition is invisible to ct-lint and
//! caught here.
//!
//! **Sources** (configurable, see [`TaintConfig`]):
//! - results of calls on the source list — `expose` (the `Secret<T>` /
//!   `SecretBlock` declassification point), `draw_pads` (IKNP pad
//!   derivation), `derive_key` (base-OT key derivation), `input_label`
//!   (GC label lookup);
//! - parameters whose names carry a secret-marker word
//!   ([`crate::rules::SECRET_MARKERS`]) in the secret-scope crates
//!   ([`crate::rules::SECRET_SCOPE`]).
//!
//! **Propagation**: `let` bindings, assignments (plain and compound),
//! `for`/`if let`/`while let` pattern bindings, `match` arm bindings,
//! buffer-mutation methods (`push`, `extend`, …), and closure parameters
//! fed from a tainted prefix of the same statement. Calling `.len()`,
//! `.is_empty()`, or `.capacity()` on a tainted value yields a *public*
//! size (the protocol invariant: sizes are public shape), so those uses do
//! not propagate.
//!
//! **Sinks** (the rules):
//! - `T-BRANCH` — `if`/`while`/`match` condition on a tainted value
//!   (control flow must never depend on secrets);
//! - `T-LOOP` — a `for` whose iterable is a *range* bounded by a tainted
//!   value (`0..n`): trip counts are timing-visible. Iterating a
//!   collection of tainted elements is fine — that reveals only its
//!   length, public shape by protocol invariant (and `enumerate` position
//!   indices are likewise public);
//! - `T-INDEX` — a tainted index or slice bound (memory addresses are
//!   cache-timing-visible);
//! - `T-COMM` — the communication-shape rule: a tainted value in a
//!   *length-determining position* of data that reaches `send` /
//!   `send_blocks` / `send_bytes` (`vec![_; n]`, `with_capacity`,
//!   `resize`, `truncate`, `take`, `set_len`, slice bounds, and
//!   `to_le_bytes` length-header construction). Message lengths must be a
//!   function of the public query shape only — the static mirror of the
//!   transcript-invariance tests;
//! - `D-PAR` — determinism of `secyan-par` dispatch closures: no RNG, no
//!   channel I/O, no clocks, no spawns inside `pool.map`/`chunks_mut`/
//!   `zip_chunks_mut`/`map_into`/`broadcast` closures (statically enforcing
//!   the DESIGN.md §9 three-rule contract).
//!
//! Suppression: `// taint-ok: <why>` on the finding line or the contiguous
//! comment block above; bulk reviewed exceptions live in `taint.allow`.
//! `#[cfg(test)]` / `#[test]` regions are skipped (tests expose and branch
//! freely), as is everything outside `crates/`.

use crate::lexer::{ident_words, ScannedFile};
use crate::parse::{find_at_depth0, matching_close, parse_fns, pattern_names, tokenize, Tok};
use crate::rules::{Finding, SECRET_MARKERS, SECRET_SCOPE};
use std::collections::BTreeSet;
use std::ops::Range;

/// Configuration for the taint pass. `Default` gives the reviewed source
/// list; `--source <name>` on the CLI appends to it.
#[derive(Debug, Clone)]
pub struct TaintConfig {
    /// Call names whose results are secret-tainted.
    pub sources: Vec<String>,
    /// Treat marker-named parameters in secret-scope crates as tainted.
    pub marker_params: bool,
}

impl Default for TaintConfig {
    fn default() -> TaintConfig {
        TaintConfig {
            sources: ["expose", "draw_pads", "derive_key", "input_label"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            marker_params: true,
        }
    }
}

/// Send-like calls whose payload shape is wire-visible.
const SEND_SINKS: &[&str] = &["send", "send_blocks", "send_bytes"];

/// Method names that block on (or force) a wire frame: any `recv*` fetch,
/// plus an explicit `flush`. Inside a loop these defeat send staging.
fn is_blocking_name(name: &str) -> bool {
    name.starts_with("recv") || name == "flush"
}

/// Method names that stage outbound data (`send`, `send_u64`,
/// `send_u64_slice`, `send_bits`, …).
fn is_send_name(name: &str) -> bool {
    name.starts_with("send")
}

/// Buffer-mutation methods: `recv.meth(args)` makes `args` flow into
/// `recv` (forward taint) and `recv`'s wire exposure flow into `args`
/// (backward flows-to-send).
const MUTATORS: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
    "copy_from_slice",
    "clone_from",
    "clone_from_slice",
    "fill",
    "push_str",
    "write",
    "write_all",
];

/// Pool dispatch methods whose closures are the parallel sections bound by
/// the determinism contract.
const POOL_DISPATCH: &[&str] = &[
    "map",
    "map_into",
    "chunks_mut",
    "zip_chunks_mut",
    "broadcast",
];

/// Identifiers forbidden inside pool dispatch closures: clocks, RNG entry
/// points, channel I/O, and thread control are all schedule-visible.
const PAR_FORBIDDEN: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "gen_range",
    "gen_bool",
    "fill_bytes",
    "now",
    "elapsed",
    "sleep",
    "spawn",
    "recv",
    "try_recv",
    "send",
    "channel",
    "Instant",
    "SystemTime",
];

/// Length-position methods: `buf.meth(n, ..)` makes `n` determine `buf`'s
/// observable size.
const LEN_METHODS: &[&str] = &["resize", "truncate", "take", "set_len", "split_off"];

/// Keywords that may directly precede `[` without making it an index
/// expression (`let [a, b] = ..` is a slice pattern, `return [a, b]` an
/// array literal). `vec` covers the `vec![..]` macro.
const NONVALUE_BEFORE_BRACKET: &[&str] = &[
    "let", "vec", "in", "return", "else", "move", "as", "mut", "ref", "box", "if", "while",
    "match", "for", "loop", "break", "continue", "use", "pub", "fn", "struct", "enum", "impl",
    "where", "unsafe", "await", "dyn", "const", "static", "type", "crate", "mod", "trait",
];

/// One value-flow event: `lhs` receives the value of the tokens in `rhs`.
struct Event {
    lhs: Vec<String>,
    rhs: Range<usize>,
}

/// A control-flow sink collected during the statement walk.
struct Sink {
    rule: &'static str,
    cond: Range<usize>,
    line: usize,
}

/// Run the taint pass over one file's source text.
pub fn taint_source(rel_path: &str, src: &str, cfg: &TaintConfig) -> Vec<Finding> {
    if !rel_path.starts_with("crates/") {
        return Vec::new();
    }
    let scan = ScannedFile::scan(src);
    let toks = tokenize(&scan);
    let raw: Vec<&str> = src.lines().collect();
    let mask = attribute_mask(&toks);
    let fns = parse_fns(&toks);
    let in_scope = SECRET_SCOPE.iter().any(|p| rel_path.starts_with(p));

    let mut keyed: BTreeSet<(usize, &'static str)> = BTreeSet::new();
    for (fi, f) in fns.iter().enumerate() {
        if scan.in_test.get(f.line).copied().unwrap_or(false) {
            continue;
        }
        // Mask out nested fn bodies so each function is analyzed once.
        let mut fmask = mask.clone();
        for (gi, g) in fns.iter().enumerate() {
            if gi != fi && f.body.start <= g.body.start && g.body.end <= f.body.end {
                // Mask from the nested header's start; its `fn` token sits
                // a few tokens before the body — walk back to it.
                let mut h = g.body.start;
                while h > f.body.start
                    && toks[h - 1].text != ";"
                    && toks[h - 1].text != "}"
                    && toks[h - 1].text != "{"
                {
                    h -= 1;
                    if toks[h].text == "fn" {
                        break;
                    }
                }
                for m in fmask.iter_mut().take(g.body.end + 1).skip(h) {
                    *m = true;
                }
            }
        }
        analyze_fn(f, &toks, &fmask, cfg, in_scope, &mut keyed);
    }

    let mut out = Vec::new();
    for (line, rule) in keyed {
        if suppressed_by(&scan, line, "taint-ok:") {
            continue;
        }
        out.push(Finding {
            rule,
            path: rel_path.to_string(),
            line: line + 1,
            snippet: raw
                .get(line)
                .map_or(String::new(), |l| l.trim().to_string()),
        });
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

/// True if a `<tag> <reason>` comment covers line `i`: on the line itself
/// or in the contiguous run of comment/attribute lines directly above.
pub fn suppressed_by(scan: &ScannedFile, i: usize, tag: &str) -> bool {
    let hit = |j: usize| scan.comments.get(j).is_some_and(|c| c.contains(tag));
    if hit(i) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code_above = scan.code[j].trim();
        if !(code_above.is_empty() || code_above.starts_with("#[")) {
            return false;
        }
        if hit(j) {
            return true;
        }
    }
    false
}

/// Mark attribute token ranges (`#[...]` / `#![...]`): their `=` and
/// bracket tokens must not be parsed as assignments or index sinks.
fn attribute_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "!") {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.text == "[") {
                let close = matching_close(toks, j);
                for m in mask.iter_mut().take(close.min(toks.len() - 1) + 1).skip(i) {
                    *m = true;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Analyze one function body; findings accumulate as `(line, rule)` keys.
fn analyze_fn(
    f: &crate::parse::FnItem,
    toks: &[Tok],
    mask: &[bool],
    cfg: &TaintConfig,
    in_scope: bool,
    keyed: &mut BTreeSet<(usize, &'static str)>,
) {
    let body = f.body.clone();
    let (events, sinks) = collect_events(toks, mask, body.clone());

    // --- Forward taint fixpoint -------------------------------------------
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    if cfg.marker_params && in_scope {
        for p in &f.params {
            if ident_words(p)
                .iter()
                .any(|w| SECRET_MARKERS.contains(&w.as_str()))
            {
                tainted.insert(p.clone());
            }
        }
    }
    loop {
        let before = tainted.len();
        for ev in &events {
            if range_tainted(toks, mask, ev.rhs.clone(), &tainted, cfg) {
                for l in &ev.lhs {
                    tainted.insert(l.clone());
                }
            }
        }
        if tainted.len() == before {
            break;
        }
    }

    // --- Backward flows-to-send fixpoint ----------------------------------
    let mut fs: BTreeSet<String> = BTreeSet::new();
    let send_args = send_call_args(toks, mask, body.clone());
    for r in &send_args {
        for j in r.clone() {
            if !mask[j] && toks[j].is_word() {
                fs.insert(toks[j].text.clone());
            }
        }
    }
    loop {
        let before = fs.len();
        for ev in &events {
            if ev.lhs.iter().any(|l| fs.contains(l)) {
                for j in ev.rhs.clone() {
                    if j < toks.len() && !mask[j] && toks[j].is_word() {
                        fs.insert(toks[j].text.clone());
                    }
                }
            }
        }
        if fs.len() == before {
            break;
        }
    }

    // --- Control-flow sinks -----------------------------------------------
    for s in &sinks {
        if range_tainted(toks, mask, s.cond.clone(), &tainted, cfg) {
            keyed.insert((s.line, s.rule));
        }
    }

    // --- Index sinks -------------------------------------------------------
    for j in body.clone() {
        if j >= toks.len() || mask[j] || toks[j].text != "[" || j == 0 {
            continue;
        }
        let prev = &toks[j - 1];
        // An index receiver is a value: identifier, call result, or prior
        // index. Macro brackets (`vec![`, `matches![`) have `!` before the
        // bracket, and a keyword before `[` means a slice pattern or array
        // literal — neither is a lookup.
        let is_recv = (prev.is_word() && !NONVALUE_BEFORE_BRACKET.contains(&prev.text.as_str()))
            || prev.text == ")"
            || prev.text == "]";
        if !is_recv {
            continue;
        }
        let close = matching_close(toks, j);
        if range_tainted(toks, mask, j + 1..close, &tainted, cfg) {
            keyed.insert((toks[j].line, "T-INDEX"));
        }
    }

    // --- Communication-shape sinks ----------------------------------------
    for r in &send_args {
        for (lp, line) in len_positions(toks, mask, r.clone()) {
            if range_tainted(toks, mask, lp, &tainted, cfg) {
                keyed.insert((line, "T-COMM"));
            }
        }
    }
    for ev in &events {
        if ev.lhs.iter().any(|l| fs.contains(l)) {
            for (lp, line) in len_positions(toks, mask, ev.rhs.clone()) {
                if range_tainted(toks, mask, lp, &tainted, cfg) {
                    keyed.insert((line, "T-COMM"));
                }
            }
        }
    }
    // Direct length mutation of a wire-bound buffer: `buf.resize(n, _)`
    // where `buf` flows to a send and `n` is tainted.
    for j in body.clone() {
        if j >= toks.len() || mask[j] || j < 2 {
            continue;
        }
        if toks[j - 1].text != "."
            || !LEN_METHODS.contains(&toks[j].text.as_str())
            || !toks[j - 2].is_word()
            || !fs.contains(&toks[j - 2].text)
            || toks.get(j + 1).map(|t| t.text.as_str()) != Some("(")
        {
            continue;
        }
        let close = matching_close(toks, j + 1);
        let first_end = find_at_depth0(toks, j + 2, close, &[","]).min(close);
        if range_tainted(toks, mask, j + 2..first_end, &tainted, cfg) {
            keyed.insert((toks[j].line, "T-COMM"));
        }
    }

    // --- Round-discipline: per-iteration wire round trips -----------------
    loop_roundtrips(toks, mask, body.clone(), keyed);

    // --- Pool-closure determinism -----------------------------------------
    for j in body.clone() {
        if j >= toks.len() || mask[j] || j < 2 {
            continue;
        }
        if toks[j - 1].text != "." || !POOL_DISPATCH.contains(&toks[j].text.as_str()) {
            continue;
        }
        if !ident_words(&toks[j - 2].text).iter().any(|w| w == "pool") {
            continue;
        }
        let Some(open) = toks.get(j + 1).filter(|t| t.text == "(") else {
            continue;
        };
        let _ = open;
        let close = matching_close(toks, j + 1);
        for k in j + 2..close.min(toks.len()) {
            if mask[k] {
                continue;
            }
            let t = &toks[k];
            if !t.is_word() {
                continue;
            }
            let is_forbidden = PAR_FORBIDDEN.contains(&t.text.as_str())
                || ident_words(&t.text).iter().any(|w| w == "rng");
            if is_forbidden {
                keyed.insert((t.line, "D-PAR"));
            }
        }
    }
}

/// T-COMM round-discipline scan: a send-like method call inside a loop
/// whose body also blocks on the wire (any `.recv*(..)`) or forces a frame
/// (`.flush()`) pays one wire round trip *per iteration* — the per-edge
/// ping-pong the staged `send`/`flush` transport API exists to eliminate,
/// and the exact shape that regresses super-round counts. Batch the sends
/// (stage the whole loop's worth, then receive), or split the operator
/// into a stage-all `*_begin` / receive-only `*_finish` pair. Loops that
/// only send are fine: staged messages coalesce into one super-frame.
fn loop_roundtrips(
    toks: &[Tok],
    mask: &[bool],
    body: Range<usize>,
    keyed: &mut BTreeSet<(usize, &'static str)>,
) {
    let end = body.end.min(toks.len());
    let mut i = body.start;
    while i < end {
        if mask[i] || !matches!(toks[i].text.as_str(), "for" | "while" | "loop") {
            i += 1;
            continue;
        }
        let brace = find_at_depth0(toks, i + 1, end, &["{"]);
        if brace >= end {
            i += 1;
            continue;
        }
        let close = matching_close(toks, brace);
        let mut send_lines = Vec::new();
        let mut blocks = false;
        for j in brace + 1..close.min(toks.len()) {
            // Method-call position only: `recv.x(..)`. Free functions and
            // definitions (`fn send_frame`) are not wire calls.
            if mask[j]
                || !toks[j].is_word()
                || j == 0
                || toks[j - 1].text != "."
                || toks.get(j + 1).map(|t| t.text.as_str()) != Some("(")
            {
                continue;
            }
            let name = toks[j].text.as_str();
            if is_send_name(name) {
                send_lines.push(toks[j].line);
            } else if is_blocking_name(name) {
                blocks = true;
            }
        }
        if blocks {
            for l in send_lines {
                keyed.insert((l, "T-COMM"));
            }
        }
        // Descend past the header so nested loops are scanned on their own.
        i = brace + 1;
    }
}

/// Collect value-flow events and control-flow sinks from a body range.
fn collect_events(toks: &[Tok], mask: &[bool], body: Range<usize>) -> (Vec<Event>, Vec<Sink>) {
    let mut events = Vec::new();
    let mut sinks = Vec::new();
    let end = body.end.min(toks.len());
    let mut stmt_start = body.start;
    let mut i = body.start;
    while i < end {
        if mask[i] {
            i += 1;
            continue;
        }
        let t = toks[i].text.as_str();
        match t {
            ";" | "{" | "}" => {
                stmt_start = i + 1;
                i += 1;
            }
            "let" => {
                let eq = find_at_depth0(toks, i + 1, end, &["="]);
                let semi = find_at_depth0(toks, i + 1, end, &[";"]);
                let colon = find_at_depth0(toks, i + 1, end, &[":"]);
                let pat_end = eq.min(semi).min(colon);
                let lhs = pattern_names(&toks[i + 1..pat_end.min(end)]);
                if eq < semi {
                    let rhs_end = semi.min(end);
                    events.push(Event {
                        lhs,
                        rhs: eq + 1..rhs_end,
                    });
                    i = eq + 1;
                } else {
                    i = pat_end.min(end);
                }
            }
            "for" => {
                let kw_in = find_at_depth0(toks, i + 1, end, &["in"]);
                let brace = find_at_depth0(toks, kw_in.saturating_add(1), end, &["{"]);
                if kw_in < end && brace <= end {
                    let iterable = kw_in + 1..brace;
                    events.push(Event {
                        lhs: iter_pattern_names(&toks[i + 1..kw_in], toks, iterable.clone()),
                        rhs: iterable.clone(),
                    });
                    // A loop leaks its trip count only when a tainted value
                    // *bounds* a range (`0..n`). Iterating a collection of
                    // tainted elements directly reveals only its length —
                    // public shape by protocol invariant.
                    if has_range_op(toks, iterable.clone()) {
                        sinks.push(Sink {
                            rule: "T-LOOP",
                            cond: iterable,
                            line: toks[i].line,
                        });
                    }
                    i = brace;
                } else {
                    i += 1;
                }
            }
            "if" | "while" => {
                if toks.get(i + 1).is_some_and(|n| n.text == "let") {
                    let eq = find_at_depth0(toks, i + 2, end, &["="]);
                    let brace = find_at_depth0(toks, eq.saturating_add(1), end, &["{"]);
                    if eq < end && brace <= end {
                        let lhs = pattern_names(&toks[i + 2..eq]);
                        events.push(Event {
                            lhs,
                            rhs: eq + 1..brace,
                        });
                        sinks.push(Sink {
                            rule: "T-BRANCH",
                            cond: eq + 1..brace,
                            line: toks[i].line,
                        });
                        i = brace;
                    } else {
                        i += 1;
                    }
                } else {
                    let brace = find_at_depth0(toks, i + 1, end, &["{"]);
                    if brace <= end {
                        sinks.push(Sink {
                            rule: "T-BRANCH",
                            cond: i + 1..brace,
                            line: toks[i].line,
                        });
                        i = brace;
                    } else {
                        i += 1;
                    }
                }
            }
            "match" => {
                let brace = find_at_depth0(toks, i + 1, end, &["{"]);
                if brace <= end {
                    let scrut = i + 1..brace;
                    sinks.push(Sink {
                        rule: "T-BRANCH",
                        cond: scrut.clone(),
                        line: toks[i].line,
                    });
                    // Arm patterns bind from the scrutinee: collect names
                    // between arm boundaries and `=>` inside the match body.
                    let close = matching_close(toks, brace);
                    let mut a = brace + 1;
                    while a < close {
                        let arrow = find_at_depth0(toks, a, close, &["=>"]);
                        if arrow >= close {
                            break;
                        }
                        let lhs = pattern_names(&toks[a..arrow]);
                        if !lhs.is_empty() {
                            events.push(Event {
                                lhs,
                                rhs: scrut.clone(),
                            });
                        }
                        // Skip the arm body: to the `,` at depth 0 of the
                        // match block, or a braced body.
                        let next = find_at_depth0(toks, arrow + 1, close, &[","]);
                        a = if next >= close { close } else { next + 1 };
                    }
                    i = brace + 1;
                } else {
                    i += 1;
                }
            }
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>=" => {
                // A statement-level assignment (lets advanced past their own
                // `=`). LHS base: first non-`self` word of the statement.
                let lhs: Vec<String> = toks[stmt_start..i]
                    .iter()
                    .find(|t| t.is_word() && t.text != "self" && t.text != "mut")
                    .map(|t| vec![t.text.clone()])
                    .unwrap_or_default();
                let semi = find_at_depth0(toks, i + 1, end, &[";"]).min(end);
                if !lhs.is_empty() {
                    events.push(Event {
                        lhs,
                        rhs: i + 1..semi,
                    });
                }
                i += 1;
            }
            "|" | "||" => {
                // Closure position: `|` not after a value-producing token.
                let closure_pos = i == 0
                    || !(toks[i - 1].is_word()
                        || toks[i - 1].text == ")"
                        || toks[i - 1].text == "]");
                if closure_pos {
                    let params_end = if t == "||" {
                        i
                    } else {
                        find_at_depth0(toks, i + 1, end, &["|"])
                    };
                    if params_end < end || t == "||" {
                        // Closure params are fed by the statement prefix
                        // (e.g. `tainted.iter().map(|x| ..)`). Start the
                        // prefix after the last statement-level `=`, so a
                        // `let out = tainted_thing.map(|x| ..)` binding does
                        // not feed `out`'s own (fixpoint-)taint back into x.
                        let mut feed_start = stmt_start;
                        for (k, tok) in toks.iter().enumerate().take(i).skip(stmt_start) {
                            if tok.text == "=" {
                                feed_start = k + 1;
                            }
                        }
                        let lhs = if t == "||" {
                            Vec::new()
                        } else {
                            iter_pattern_names(&toks[i + 1..params_end], toks, feed_start..i)
                        };
                        if !lhs.is_empty() && feed_start < i {
                            events.push(Event {
                                lhs,
                                rhs: feed_start..i,
                            });
                        }
                        i = if t == "||" { i + 1 } else { params_end + 1 };
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            _ => {
                // Mutation methods: `recv.meth(args)`.
                if toks[i].is_word()
                    && MUTATORS.contains(&t)
                    && i >= 2
                    && toks[i - 1].text == "."
                    && toks[i - 2].is_word()
                    && toks.get(i + 1).is_some_and(|n| n.text == "(")
                {
                    let close = matching_close(toks, i + 1);
                    events.push(Event {
                        lhs: vec![toks[i - 2].text.clone()],
                        rhs: i + 2..close,
                    });
                }
                i += 1;
            }
        }
    }
    (events, sinks)
}

/// Does the token range contain a range operator (`..` / `..=`) at any
/// depth? Used to tell `for i in 0..n` (trip count = n) from `for x in xs`
/// (trip count = public length).
fn has_range_op(toks: &[Tok], range: Range<usize>) -> bool {
    toks[range.start..range.end.min(toks.len())]
        .iter()
        .any(|t| t.text == ".." || t.text == "..=")
}

/// Pattern names for bindings fed by an iterator expression. When the
/// feeding expression ends in `.enumerate()`, the first binding is the
/// position index — a public value even over secret elements — so it is
/// dropped from the taint-receiving set.
fn iter_pattern_names(pat: &[Tok], toks: &[Tok], feed: Range<usize>) -> Vec<String> {
    let mut names = pattern_names(pat);
    let enumerated = toks[feed.start..feed.end.min(toks.len())]
        .iter()
        .any(|t| t.text == "enumerate");
    if enumerated && names.len() > 1 {
        names.remove(0);
    }
    names
}

/// Token ranges of arguments to send-like calls in `body`.
fn send_call_args(toks: &[Tok], mask: &[bool], body: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    for j in body {
        if j >= toks.len() || mask[j] {
            continue;
        }
        if !SEND_SINKS.contains(&toks[j].text.as_str()) {
            continue;
        }
        // `fn send(...)` is a definition, not a call site.
        if j > 0 && toks[j - 1].text == "fn" {
            continue;
        }
        if toks.get(j + 1).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let close = matching_close(toks, j + 1);
        out.push(j + 2..close);
    }
    out
}

/// Length-determining sub-expressions inside `range`:
/// `vec![_; LEN]`, `with_capacity(LEN)`, `.resize(LEN, ..)` and friends,
/// slice bounds `[A..B]`, and `x.to_le_bytes()` length-header encoding.
fn len_positions(toks: &[Tok], mask: &[bool], range: Range<usize>) -> Vec<(Range<usize>, usize)> {
    let mut out = Vec::new();
    let end = range.end.min(toks.len());
    let mut j = range.start;
    while j < end {
        if mask[j] {
            j += 1;
            continue;
        }
        let t = toks[j].text.as_str();
        // vec![elem; LEN]
        if t == "vec"
            && toks.get(j + 1).is_some_and(|n| n.text == "!")
            && toks.get(j + 2).is_some_and(|n| n.text == "[")
        {
            let close = matching_close(toks, j + 2);
            let semi = find_at_depth0(toks, j + 3, close, &[";"]);
            if semi < close {
                out.push((semi + 1..close, toks[j].line));
            }
            j = close + 1;
            continue;
        }
        // with_capacity(LEN)
        if t == "with_capacity" && toks.get(j + 1).is_some_and(|n| n.text == "(") {
            let close = matching_close(toks, j + 1);
            out.push((j + 2..close, toks[j].line));
            j = close + 1;
            continue;
        }
        // .resize(LEN, ..) / .truncate(LEN) / .take(LEN) / ...
        if j > 0
            && toks[j - 1].text == "."
            && LEN_METHODS.contains(&t)
            && toks.get(j + 1).is_some_and(|n| n.text == "(")
        {
            let close = matching_close(toks, j + 1);
            let first_end = find_at_depth0(toks, j + 2, close, &[","]).min(close);
            out.push((j + 2..first_end, toks[j].line));
            j += 2;
            continue;
        }
        // slice bounds: `[ .. ]` ranges inside an index expression
        if t == "[" && j > 0 && (toks[j - 1].is_word() || toks[j - 1].text == ")") {
            let close = matching_close(toks, j);
            let dots = find_at_depth0(toks, j + 1, close, &["..", "..="]);
            if dots < close {
                out.push((j + 1..close, toks[j].line));
                j = close + 1;
                continue;
            }
        }
        // length-header construction: `x.to_le_bytes()` / `x.to_be_bytes()`
        if (t == "to_le_bytes" || t == "to_be_bytes") && j >= 2 && toks[j - 1].text == "." {
            let recv_start = if toks[j - 2].text == ")" {
                // Walk back to the matching `(`.
                let mut depth = 0i32;
                let mut k = j - 2;
                loop {
                    match toks[k].text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                k
            } else {
                j - 2
            };
            out.push((recv_start..j - 1, toks[j].line));
        }
        j += 1;
    }
    out
}

/// Does `range` mention a tainted value? True if it contains a tainted
/// identifier (not behind a `.len()`-style public-size escape) or a direct
/// source call.
fn range_tainted(
    toks: &[Tok],
    mask: &[bool],
    range: Range<usize>,
    tainted: &BTreeSet<String>,
    cfg: &TaintConfig,
) -> bool {
    let end = range.end.min(toks.len());
    for j in range.start..end {
        if mask[j] || !toks[j].is_word() {
            continue;
        }
        let t = toks[j].text.as_str();
        let is_source_call =
            cfg.sources.iter().any(|s| s == t) && toks.get(j + 1).is_some_and(|n| n.text == "(");
        if is_source_call {
            let close = matching_close(toks, j + 1);
            if !len_escaped(toks, close + 1) {
                return true;
            }
            continue;
        }
        if tainted.contains(t) && !len_escaped(toks, j + 1) {
            return true;
        }
    }
    false
}

/// Is the token at `j` the start of a `.len()` / `.is_empty()` /
/// `.capacity()` public-size projection?
fn len_escaped(toks: &[Tok], j: usize) -> bool {
    toks.get(j).is_some_and(|t| t.text == ".")
        && toks
            .get(j + 1)
            .is_some_and(|t| t.text == "len" || t.text == "is_empty" || t.text == "capacity")
        && toks.get(j + 2).is_some_and(|t| t.text == "(")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taint(path: &str, src: &str) -> Vec<Finding> {
        taint_source(path, src, &TaintConfig::default())
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn direct_expose_in_branch() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<u64>) { if s.expose() > 0 { g(); } }",
        );
        assert_eq!(rules_of(&f), ["T-BRANCH"]);
    }

    #[test]
    fn two_hop_flow_into_branch() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<u64>) {\n let a = s.expose();\n let b = a + 1;\n if b > 0 { g(); }\n}",
        );
        assert_eq!(rules_of(&f), ["T-BRANCH"]);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn len_of_exposed_is_public() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<Vec<u8>>) {\n let n = s.expose().len();\n if n > 0 { g(); }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tainted_index_flagged() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<usize>, v: &[u8]) {\n let i = s.expose();\n let x = v[i];\n}",
        );
        assert_eq!(rules_of(&f), ["T-INDEX"]);
    }

    #[test]
    fn tainted_loop_bound_flagged() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<usize>) {\n let n = s.expose();\n for _i in 0..n { g(); }\n}",
        );
        assert_eq!(rules_of(&f), ["T-LOOP"]);
    }

    #[test]
    fn tainted_vec_len_to_send_flagged() {
        let f = taint(
            "crates/transport/src/x.rs",
            "fn f(ch: &mut Channel, s: Secret<usize>) {\n let n = s.expose();\n let buf = vec![0u8; n];\n ch.send(buf);\n}",
        );
        assert_eq!(rules_of(&f), ["T-COMM"]);
    }

    #[test]
    fn public_len_to_send_clean() {
        let f = taint(
            "crates/transport/src/x.rs",
            "fn f(ch: &mut Channel, m: usize) {\n let buf = vec![0u8; m * 16];\n ch.send(buf);\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tainted_length_header_flagged() {
        let f = taint(
            "crates/transport/src/x.rs",
            "fn f(ch: &mut Channel, s: Secret<u32>) {\n let n = s.expose();\n ch.send(n.to_le_bytes().to_vec());\n}",
        );
        assert_eq!(rules_of(&f), ["T-COMM"]);
    }

    #[test]
    fn marker_param_taints_in_scope() {
        let f = taint(
            "crates/gc/src/x.rs",
            "fn f(delta: u128) { if delta > 0 { g(); } }",
        );
        assert_eq!(rules_of(&f), ["T-BRANCH"]);
    }

    #[test]
    fn marker_param_public_outside_scope() {
        let f = taint(
            "crates/relation/src/x.rs",
            "fn f(key: u64) { if key > 0 { g(); } }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn match_on_tainted_flagged_and_arm_binds() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<Option<usize>>, v: &[u8]) {\n let o = s.expose();\n match o {\n Some(i) => { let _ = v[i]; }\n None => {}\n }\n}",
        );
        let mut r = rules_of(&f);
        r.sort();
        assert_eq!(r, ["T-BRANCH", "T-INDEX"]);
    }

    #[test]
    fn closure_param_fed_by_tainted_receiver() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<Vec<u64>>) {\n let vals = s.expose();\n let _ = vals.iter().map(|x| if *x > 0 { 1 } else { 0 }).sum::<u64>();\n}",
        );
        assert_eq!(rules_of(&f), ["T-BRANCH"]);
    }

    #[test]
    fn taint_ok_suppresses() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<u64>) {\n let a = s.expose();\n // taint-ok: declassified protocol output, public by design.\n if a > 0 { g(); }\n}",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn tests_are_skipped() {
        let f = taint(
            "crates/ot/src/x.rs",
            "#[cfg(test)]\nmod tests {\n fn f(s: Secret<u64>) { if s.expose() > 0 { g(); } }\n}",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn rng_in_pool_closure_flagged() {
        let f = taint(
            "crates/psi/src/x.rs",
            "fn f(pool: &Pool, xs: &[u8]) {\n let _ = pool.map(xs, 1, |_, x| rng.gen_range(0..2) + *x as u64);\n}",
        );
        assert_eq!(rules_of(&f), ["D-PAR"]);
    }

    #[test]
    fn clean_pool_closure_ok() {
        let f = taint(
            "crates/psi/src/x.rs",
            "fn f(pool: &Pool, xs: &[u8]) {\n let _ = pool.map(xs, 1, |_, x| *x as u64 + 1);\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn channel_io_in_pool_closure_flagged() {
        let f = taint(
            "crates/oep/src/x.rs",
            "fn f(pool: &Pool, ch: &mut Channel, xs: &[u8]) {\n let _ = pool.map(xs, 1, |_, x| { ch.send(vec![*x]); 0u8 });\n}",
        );
        assert!(rules_of(&f).contains(&"D-PAR"));
    }

    #[test]
    fn resize_on_sent_buffer_with_tainted_len() {
        let f = taint(
            "crates/transport/src/x.rs",
            "fn f(ch: &mut Channel, s: Secret<usize>) {\n let n = s.expose();\n let mut buf = Vec::new();\n buf.resize(n, 0u8);\n ch.send(buf);\n}",
        );
        assert_eq!(rules_of(&f), ["T-COMM"]);
    }

    #[test]
    fn slice_pattern_is_not_an_index() {
        let f = taint(
            "crates/gc/src/x.rs",
            "fn f(s: Secret<[u64; 2]>) -> u64 {\n let [a, b] = s.expose();\n a ^ b\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn iterating_tainted_collection_is_public_length() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<Vec<u64>>) -> u64 {\n let vals = s.expose();\n let mut acc = 0;\n for v in vals.iter() {\n acc ^= v;\n }\n acc\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn enumerate_index_is_public() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<Vec<u64>>, out: &mut [u64]) {\n let vals = s.expose();\n for (i, v) in vals.iter().enumerate() {\n out[i] = v ^ 1;\n }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn enumerate_closure_index_is_public() {
        let f = taint(
            "crates/ot/src/x.rs",
            "fn f(s: Secret<Vec<u64>>, out: &[u64]) -> u64 {\n let vals = s.expose();\n vals.iter().enumerate().map(|(j, v)| out[j] ^ v).sum()\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn let_binding_does_not_self_feed_closure() {
        // `results` becomes tainted through its rhs; that must not loop
        // back into the closure parameters via the statement prefix.
        let f = taint(
            "crates/gc/src/x.rs",
            "fn f(delta: u64, xs: &[u64], zs: &[u64]) -> u64 {\n let results = xs.iter().map(|x| x ^ delta).sum::<u64>();\n let picked = xs.iter().map(|x| zs[(*x as usize) % zs.len()]).sum::<u64>();\n results ^ picked\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn send_recv_loop_flagged() {
        let f = taint(
            "crates/oep/src/x.rs",
            "fn f(ch: &mut Channel, xs: &[u64]) {\n for x in xs {\n ch.send_u64(*x);\n let _ = ch.recv_u64();\n }\n}",
        );
        assert_eq!(rules_of(&f), ["T-COMM"]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn send_flush_loop_flagged() {
        let f = taint(
            "crates/oep/src/x.rs",
            "fn f(ch: &mut Channel, xs: &[u64]) {\n while xs.len() > 0 {\n ch.send_u64(1);\n ch.flush();\n }\n}",
        );
        assert_eq!(rules_of(&f), ["T-COMM"]);
    }

    #[test]
    fn send_only_loop_is_staged_and_clean() {
        let f = taint(
            "crates/oep/src/x.rs",
            "fn f(ch: &mut Channel, xs: &[u64]) {\n for x in xs {\n ch.send_u64(*x);\n }\n let _ = ch.recv_u64();\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recv_only_loop_clean() {
        let f = taint(
            "crates/oep/src/x.rs",
            "fn f(ch: &mut Channel, n: usize) -> u64 {\n let mut acc = 0;\n for _x in 0..n {\n acc ^= ch.recv_u64();\n }\n acc\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn roundtrip_loop_taint_ok_suppresses() {
        let f = taint(
            "crates/oep/src/x.rs",
            "fn f(ch: &mut Channel, xs: &[u64]) {\n for x in xs {\n // taint-ok: genuinely adaptive — each query depends on the last reply.\n ch.send_u64(*x);\n let _ = ch.recv_u64();\n }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn outside_crates_skipped() {
        let f = taint(
            "examples/src/x.rs",
            "fn f(s: Secret<u64>) { if s.expose() > 0 { g(); } }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn source_list_configurable() {
        let mut cfg = TaintConfig::default();
        cfg.sources.push("my_secret_fn".into());
        let f = taint_source(
            "crates/relation/src/x.rs",
            "fn f() {\n let v = my_secret_fn();\n if v > 0 { g(); }\n}",
            &cfg,
        );
        assert_eq!(rules_of(&f), ["T-BRANCH"]);
    }
}
