//! ct-lint: secret-hygiene static analysis for the secyan workspace.
//!
//! Run as `cargo xtask ct-lint`. Walks every workspace source file and
//! reports constant-time / secret-hygiene violations (see [`rules`] for the
//! rule catalogue). Findings are matched against the checked-in
//! `ct-lint.allow` baseline at the repo root: baselined findings are
//! tolerated (they are reviewed, justified exceptions — the software-AES
//! table lookups, for instance), anything new fails the run. CI runs this
//! as a required job, so the baseline can only shrink silently, never grow.
//!
//! Self-test: `cargo xtask ct-lint --fixtures` lints the seeded-violation
//! tree in `tests/ct_lint_fixtures/` and checks every `ct-expect:`
//! annotation fired — and nothing else did. The same check runs under
//! `cargo test -p xtask`.

pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod taint;

use rules::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories under the workspace root that hold lintable sources.
const SOURCE_ROOTS: &[&str] = &["crates", "examples", "tests", "xtask"];

/// Path fragments that are never linted (fixtures are linted only by the
/// dedicated fixtures mode; `target` holds build products).
const EXCLUDED: &[&str] = &["ct_lint_fixtures", "taint_fixtures", "target"];

/// Recursively collect `.rs` files under `dir`, paths relative to `root`.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if EXCLUDED.contains(&name) {
            continue;
        }
        if path.is_dir() {
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
}

/// Lint one file's source text.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let scan = lexer::ScannedFile::scan(src);
    let raw: Vec<&str> = src.lines().collect();
    rules::lint_scanned(rel_path, &scan, &raw)
}

/// Lint the whole workspace tree rooted at `root`. Returns findings in
/// path/line order.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in SOURCE_ROOTS {
        collect_rs(root, &root.join(sub), &mut files);
    }
    let mut findings = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        findings.extend(lint_source(&rel_str, &src));
    }
    Ok(findings)
}

/// Run the taint pass (see [`taint`]) over the whole workspace tree rooted
/// at `root`. Returns findings in path/line order.
pub fn taint_workspace(root: &Path, cfg: &taint::TaintConfig) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in SOURCE_ROOTS {
        collect_rs(root, &root.join(sub), &mut files);
    }
    let mut findings = Vec::new();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        findings.extend(taint::taint_source(&rel_str, &src, cfg));
    }
    Ok(findings)
}

/// Parse a baseline file into key → allowed-count.
pub fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *map.entry(line.to_string()).or_insert(0) += 1;
    }
    map
}

/// Result of matching findings against a baseline.
pub struct BaselineDiff {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Finding>,
    /// Baseline keys that matched nothing — stale entries to prune.
    pub stale: Vec<String>,
}

/// Match `findings` against the baseline map.
pub fn diff_baseline(findings: Vec<Finding>, baseline: &BTreeMap<String, usize>) -> BaselineDiff {
    let mut budget = baseline.clone();
    let mut new = Vec::new();
    for f in findings {
        match budget.get_mut(&f.key()) {
            Some(n) if *n > 0 => *n -= 1,
            _ => new.push(f),
        }
    }
    let stale = budget
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, _)| k)
        .collect();
    BaselineDiff { new, stale }
}

/// Serialize findings as a baseline file body. `tool` names the xtask
/// subcommand (`ct-lint` / `taint`) and `ok_tag` the inline suppression
/// comment tag (`ct-ok:` / `taint-ok:`) quoted in the header.
pub fn render_baseline(tool: &str, ok_tag: &str, findings: &[Finding]) -> String {
    let mut out = format!(
        "# {tool} baseline: reviewed, justified findings the lint tolerates.\n\
         # One finding per line: rule<TAB>path<TAB>normalized snippet.\n\
         # Regenerate with `cargo xtask {tool} --update-baseline`; new code\n\
         # must come in clean (or carry an inline `// {ok_tag}` justification).\n",
    );
    for f in findings {
        out.push_str(&f.key());
        out.push('\n');
    }
    out
}

/// Fixture check against the ct-lint rules and `ct-expect:` annotations.
/// See [`check_fixtures_with`].
pub fn check_fixtures(dir: &Path) -> std::io::Result<Vec<String>> {
    check_fixtures_with(dir, "ct-expect:", &|rel, src| lint_source(rel, src))
}

/// Fixture check against the taint rules and `taint-expect:` annotations.
/// See [`check_fixtures_with`].
pub fn check_taint_fixtures(dir: &Path, cfg: &taint::TaintConfig) -> std::io::Result<Vec<String>> {
    check_fixtures_with(dir, "taint-expect:", &|rel, src| {
        taint::taint_source(rel, src, cfg)
    })
}

/// Fixture check: lint every `.rs` file under `dir` with `lint` and verify
/// the `<expect_tag> <RULE>...` annotations. An annotation on line N
/// expects each named rule to fire on line N+1; any finding without a
/// matching annotation is an error (false positive), any annotation without
/// its finding is an error (false negative). Returns problem descriptions.
///
/// Paths are taken relative to `dir`, so the fixture tree mirrors the
/// workspace layout (`<dir>/crates/ot/src/...` lints with the scoping of
/// `crates/ot/src/...`).
pub fn check_fixtures_with(
    dir: &Path,
    expect_tag: &str,
    lint: &dyn Fn(&str, &str) -> Vec<Finding>,
) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    collect_rs(dir, dir, &mut files);
    let mut problems = Vec::new();
    let mut saw_any = false;
    for rel in files {
        let abs = dir.join(&rel);
        let src = fs::read_to_string(&abs)?;
        let rel_str = rel
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        saw_any = true;
        let scan = lexer::ScannedFile::scan(&src);
        let findings = lint(&rel_str, &src);
        // Gather expectations: (line, rule) pairs, where line is the line
        // *after* the annotation comment.
        let mut expected: Vec<(usize, String, bool)> = Vec::new();
        for (i, comment) in scan.comments.iter().enumerate() {
            if let Some(pos) = comment.find(expect_tag) {
                for rule in comment[pos + expect_tag.len()..].split_whitespace() {
                    expected.push((i + 2, rule.to_string(), false));
                }
            }
        }
        for f in &findings {
            match expected
                .iter_mut()
                .find(|(line, rule, used)| *line == f.line && rule == f.rule && !*used)
            {
                Some(slot) => slot.2 = true,
                None => problems.push(format!(
                    "unexpected finding (false positive): {} {}:{} `{}`",
                    f.rule, f.path, f.line, f.snippet
                )),
            }
        }
        for (line, rule, used) in expected {
            if !used {
                problems.push(format!(
                    "missed expected finding (false negative): {rule} {rel_str}:{line}"
                ));
            }
        }
    }
    if !saw_any {
        problems.push(format!("no fixture files found under {}", dir.display()));
    }
    Ok(problems)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let f = Finding {
            rule: "R-EQ",
            path: "crates/x/src/a.rs".into(),
            line: 10,
            snippet: "seed == other".into(),
        };
        let body = render_baseline("ct-lint", "ct-ok:", std::slice::from_ref(&f));
        let map = parse_baseline(&body);
        let diff = diff_baseline(vec![f], &map);
        assert!(diff.new.is_empty());
        assert!(diff.stale.is_empty());
    }

    #[test]
    fn unbaselined_finding_is_new() {
        let f = Finding {
            rule: "R-EQ",
            path: "a.rs".into(),
            line: 1,
            snippet: "seed == 1".into(),
        };
        let diff = diff_baseline(vec![f], &BTreeMap::new());
        assert_eq!(diff.new.len(), 1);
    }

    #[test]
    fn stale_entries_reported() {
        let map = parse_baseline("R-EQ\ta.rs\tgone == 1\n");
        let diff = diff_baseline(Vec::new(), &map);
        assert_eq!(diff.stale.len(), 1);
    }

    #[test]
    fn duplicate_baseline_lines_budget_counts() {
        let map = parse_baseline("R-EQ\ta.rs\tx == 1\nR-EQ\ta.rs\tx == 1\n");
        let mk = |line| Finding {
            rule: "R-EQ",
            path: "a.rs".into(),
            line,
            snippet: "x == 1".into(),
        };
        let diff = diff_baseline(vec![mk(1), mk(2), mk(3)], &map);
        assert_eq!(diff.new.len(), 1, "two budgeted, third is new");
    }
}
