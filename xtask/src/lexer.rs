//! A minimal Rust surface scanner.
//!
//! ct-lint does not need a full parse — every rule it implements is a
//! line-local pattern over *code* text, plus comment text for the SAFETY
//! rule and string-literal text for the Debug-format rule. This module
//! splits a source file into those three per-line channels and marks the
//! lines that sit inside `#[cfg(test)]` / `#[test]` regions, where the
//! secret-hygiene rules do not apply (tests may compare and print freely).
//!
//! Hand-rolled on purpose: the linter must build with zero dependencies so
//! it runs in offline CI images that carry only the workspace itself.

/// Per-line decomposition of a source file.
pub struct ScannedFile {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (the delimiting quotes remain so token shapes survive).
    pub code: Vec<String>,
    /// Comment text per line (both `//` and `/* */` bodies).
    pub comments: Vec<String>,
    /// String-literal contents per line (format strings live here).
    pub strings: Vec<String>,
    /// True for lines inside a `#[cfg(test)]` or `#[test]` region.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl ScannedFile {
    /// Scan `src` into per-line code/comment/string channels.
    pub fn scan(src: &str) -> ScannedFile {
        let mut code = Vec::new();
        let mut comments = Vec::new();
        let mut strings = Vec::new();
        let mut cur_code = String::new();
        let mut cur_comment = String::new();
        let mut cur_string = String::new();
        let mut state = State::Code;
        let chars: Vec<char> = src.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            if c == '\n' {
                code.push(std::mem::take(&mut cur_code));
                comments.push(std::mem::take(&mut cur_comment));
                strings.push(std::mem::take(&mut cur_string));
                if state == State::LineComment {
                    state = State::Code;
                }
                i += 1;
                continue;
            }
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        cur_code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        // r"..."  r#"..."#  br"..."  — count the hashes.
                        let mut j = i + 1;
                        if chars.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        cur_code.push('"');
                        state = State::RawStr(hashes);
                        i = j + 1;
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`): a lifetime
                        // is `'` + ident not followed by a closing quote.
                        let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                            && chars.get(i + 2) != Some(&'\'');
                        if is_lifetime {
                            cur_code.push('\'');
                            i += 1;
                        } else {
                            cur_code.push('\'');
                            state = State::Char;
                            i += 1;
                        }
                    }
                    _ => {
                        cur_code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => {
                    cur_comment.push(c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            // Keep token separation where the comment sat.
                            cur_code.push(' ');
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        cur_comment.push(c);
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        cur_string.push(c);
                        // An escaped newline (string line continuation) must
                        // not be consumed here: the physical line still ends,
                        // and the top-of-loop newline branch emits the line
                        // break. Consuming it desynchronizes every following
                        // line number (findings, fixtures, test masks).
                        if next == Some('\n') {
                            i += 1;
                        } else {
                            if let Some(n) = next {
                                cur_string.push(n);
                            }
                            i += 2;
                        }
                    }
                    '"' => {
                        cur_code.push('"');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        cur_string.push(c);
                        i += 1;
                    }
                },
                State::RawStr(hashes) => {
                    if c == '"' && raw_str_closes(&chars, i, hashes) {
                        cur_code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        cur_string.push(c);
                        i += 1;
                    }
                }
                State::Char => match c {
                    '\\' => {
                        // Same escaped-newline guard as in strings: never
                        // consume a `\n` inside an escape skip.
                        i += if next == Some('\n') { 1 } else { 2 };
                    }
                    '\'' => {
                        cur_code.push('\'');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        i += 1;
                    }
                },
            }
        }
        code.push(cur_code);
        comments.push(cur_comment);
        strings.push(cur_string);
        let in_test = mark_test_regions(&code);
        ScannedFile {
            code,
            comments,
            strings,
            in_test,
        }
    }
}

/// Does position `i` (at `r` or `b`) start a raw string literal? Require the
/// previous char not be part of an identifier (`var` vs `r"..."`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the `"` at position `i` close a raw string with `hashes` hashes?
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Mark every line inside a `#[cfg(test)]` or `#[test]` item.
///
/// Brace-based: from the attribute, find the next `{` and mark lines until
/// its matching `}`. Attributes on items without braces (rare for tests)
/// simply mark through the next `;`.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut line = 0usize;
    while line < code.len() {
        let l = &code[line];
        if l.contains("#[cfg(test)]") || l.contains("#[test]") || l.contains("#[bench]") {
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = line;
            'outer: while j < code.len() {
                mask[j] = true;
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth <= 0 {
                                break 'outer;
                            }
                        }
                        ';' if !opened => break 'outer,
                        _ => {}
                    }
                }
                j += 1;
            }
            line = j + 1;
        } else {
            line += 1;
        }
    }
    mask
}

/// Split a code line into identifier tokens.
pub fn identifiers(code_line: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut start = 0usize;
    for (pos, c) in code_line.char_indices() {
        if c.is_alphanumeric() || c == '_' {
            if cur.is_empty() {
                start = pos;
            }
            cur.push(c);
        } else if !cur.is_empty() {
            out.push((start, std::mem::take(&mut cur)));
        }
    }
    if !cur.is_empty() {
        out.push((start, cur));
    }
    out
}

/// Split an identifier into lowercase words: `wire_label` → [wire, label],
/// `KkrtSenderKey` → [kkrt, sender, key].
pub fn ident_words(ident: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in ident.chars() {
        if c == '_' {
            if !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
        } else if c.is_uppercase() {
            if prev_lower && !cur.is_empty() {
                words.push(std::mem::take(&mut cur));
            }
            cur.extend(c.to_lowercase());
            prev_lower = false;
        } else {
            cur.push(c);
            prev_lower = c.is_lowercase();
        }
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let s = ScannedFile::scan("let x = \"secret text\"; // trailing\nlet y = 2; /* mid */ z");
        assert_eq!(s.code[0], "let x = \"\"; ");
        assert_eq!(s.comments[0], " trailing");
        assert_eq!(s.strings[0], "secret text");
        assert_eq!(s.code[1], "let y = 2;   z");
        assert_eq!(s.comments[1], " mid ");
    }

    #[test]
    fn raw_strings_and_chars() {
        let s =
            ScannedFile::scan("let a = r#\"raw \"inner\" body\"#; let c = '\"'; let l: &'a u8;");
        assert_eq!(s.code[0], "let a = \"\"; let c = '\'; let l: &'a u8;");
        assert_eq!(s.strings[0], "raw \"inner\" body");
    }

    #[test]
    fn byte_strings() {
        let s = ScannedFile::scan("h.update(b\"tag\"); let r = br\"raw\";");
        assert!(!s.strings[0].is_empty());
        assert!(!s.code[0].contains("tag"));
    }

    #[test]
    fn test_region_masking() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let s = ScannedFile::scan(src);
        assert_eq!(s.in_test, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn nested_block_comments() {
        let s = ScannedFile::scan("a /* x /* y */ z */ b");
        assert_eq!(s.code[0], "a   b");
    }

    /// Every scan must produce exactly one code/comment/string entry per
    /// source line — downstream line numbers (findings, `ct-expect:`
    /// fixtures) depend on it. Checks the channel lengths against the raw
    /// newline count.
    fn assert_line_sync(src: &str) {
        let want = src.split('\n').count();
        let s = ScannedFile::scan(src);
        assert_eq!(s.code.len(), want, "code lines desynced for {src:?}");
        assert_eq!(s.comments.len(), want, "comment lines desynced");
        assert_eq!(s.strings.len(), want, "string lines desynced");
    }

    #[test]
    fn string_line_continuation_keeps_line_sync() {
        // A `\` before the newline continues the string literal onto the
        // next line; the newline must still produce a line break in the
        // scanned channels.
        let src = "let a = \"x\\\ny\";\nlet seed = 1;\n";
        assert_line_sync(src);
        let s = ScannedFile::scan(src);
        // `let seed = 1;` must land on line 3 (index 2), not shift up.
        assert!(s.code[2].contains("seed"));
    }

    #[test]
    fn multi_line_raw_string_keeps_line_sync() {
        let src = "let a = r#\"one\ntwo\nthree\"#;\nlet key = 9;\n";
        assert_line_sync(src);
        let s = ScannedFile::scan(src);
        assert!(s.code[3].contains("key"));
        // The raw string body must live in the string channel, not code.
        assert!(s.strings[1].contains("two"));
        assert!(!s.code[1].contains("two"));
    }

    #[test]
    fn raw_string_with_comment_markers_inside() {
        let src = "let a = r#\"// not a comment /* nor this\"#; let b = 1;";
        let s = ScannedFile::scan(src);
        assert!(s.code[0].contains("let b = 1;"), "code: {:?}", s.code[0]);
        assert!(s.comments[0].is_empty());
    }

    #[test]
    fn two_raw_strings_one_line() {
        let s = ScannedFile::scan("f(r#\"a\"#, r\"b\"); g();");
        assert!(s.code[0].contains("g();"));
        assert_eq!(s.strings[0], "ab");
    }

    #[test]
    fn block_comment_with_quote_inside() {
        let src = "/* \"unclosed */ let x = 1;\nlet y = 2;\n";
        assert_line_sync(src);
        let s = ScannedFile::scan(src);
        assert!(s.code[0].contains("let x = 1;"));
    }

    #[test]
    fn string_with_comment_opener_inside() {
        let s = ScannedFile::scan("let s = \"/* //\"; let y = 2;");
        assert!(s.code[0].contains("let y = 2;"));
        assert!(s.comments[0].is_empty());
    }

    #[test]
    fn nested_block_comment_spanning_lines() {
        let src = "a /* x\n/* y\n*/ z\n*/ b\nc\n";
        assert_line_sync(src);
        let s = ScannedFile::scan(src);
        assert!(s.code[3].contains('b'));
        assert!(s.code[4].contains('c'));
        assert!(!s.code[2].contains('z'), "still inside depth-2 comment");
    }

    #[test]
    fn char_literal_escapes() {
        let src = "let a = '\\''; let b = '\\\\'; let c = '\\u{41}'; done();";
        let s = ScannedFile::scan(src);
        assert!(s.code[0].contains("done();"), "code: {:?}", s.code[0]);
    }

    #[test]
    fn raw_string_followed_by_line_comment() {
        let src = "let a = r\"body\"; // trailing seed note\nlet b = 1;\n";
        assert_line_sync(src);
        let s = ScannedFile::scan(src);
        assert!(s.comments[0].contains("trailing"));
        assert!(s.code[1].contains("let b"));
    }

    #[test]
    fn ident_word_split() {
        assert_eq!(ident_words("wire_label"), ["wire", "label"]);
        assert_eq!(ident_words("KkrtSenderKey"), ["kkrt", "sender", "key"]);
        assert_eq!(ident_words("SBOX"), ["sbox"]);
        assert_eq!(
            ident_words("input_zero_labels"),
            ["input", "zero", "labels"]
        );
    }

    #[test]
    fn identifier_extraction() {
        let ids: Vec<String> = identifiers("let k0 = derive_key(i, b.pow(a));")
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert_eq!(ids, ["let", "k0", "derive_key", "i", "b", "pow", "a"]);
    }
}
