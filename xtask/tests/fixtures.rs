//! Self-test: the lint catches every seeded violation in
//! `tests/ct_lint_fixtures/` and flags nothing in the clean files. This is
//! the same check `cargo xtask ct-lint --fixtures` runs, wired into
//! `cargo test` so the tier-1 suite exercises the linter end to end.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    xtask::find_workspace_root(here.parent().expect("xtask has a parent"))
        .expect("workspace root above xtask/")
}

#[test]
fn fixtures_all_caught_no_false_positives() {
    let dir = workspace_root().join("tests/ct_lint_fixtures");
    let problems = xtask::check_fixtures(&dir).expect("fixtures readable");
    assert!(
        problems.is_empty(),
        "ct-lint fixture mismatches:\n{}",
        problems.join("\n")
    );
}

#[test]
fn fixture_findings_cover_every_rule() {
    let dir = workspace_root().join("tests/ct_lint_fixtures");
    let mut rules: Vec<&str> = Vec::new();
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for e in std::fs::read_dir(&d).expect("readable").flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let rel = p
                    .strip_prefix(&dir)
                    .expect("under fixtures dir")
                    .to_string_lossy()
                    .replace(std::path::MAIN_SEPARATOR, "/");
                let src = std::fs::read_to_string(&p).expect("readable");
                for f in xtask::lint_source(&rel, &src) {
                    rules.push(f.rule);
                }
            }
        }
    }
    for expected in ["R-EQ", "R-BRANCH", "R-DEBUG", "R-INDEX", "R-UNSAFE"] {
        assert!(
            rules.contains(&expected),
            "no fixture exercises {expected}; got {rules:?}"
        );
    }
}

#[test]
fn workspace_lint_matches_checked_in_baseline() {
    let root = workspace_root();
    let findings = xtask::lint_workspace(&root).expect("workspace readable");
    let baseline_text = std::fs::read_to_string(root.join("ct-lint.allow")).unwrap_or_default();
    let baseline = xtask::parse_baseline(&baseline_text);
    let diff = xtask::diff_baseline(findings, &baseline);
    assert!(
        diff.new.is_empty(),
        "new ct-lint findings (fix or justify):\n{}",
        diff.new
            .iter()
            .map(|f| format!("{} {}:{}: {}", f.rule, f.path, f.line, f.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        diff.stale.is_empty(),
        "stale ct-lint.allow entries (prune):\n{}",
        diff.stale.join("\n")
    );
}

#[test]
fn taint_fixtures_all_caught_no_false_positives() {
    let dir = workspace_root().join("tests/taint_fixtures");
    let cfg = xtask::taint::TaintConfig::default();
    let problems = xtask::check_taint_fixtures(&dir, &cfg).expect("fixtures readable");
    assert!(
        problems.is_empty(),
        "taint fixture mismatches:\n{}",
        problems.join("\n")
    );
}

#[test]
fn taint_fixture_findings_cover_every_rule() {
    let dir = workspace_root().join("tests/taint_fixtures");
    let cfg = xtask::taint::TaintConfig::default();
    let mut rules: Vec<&str> = Vec::new();
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for e in std::fs::read_dir(&d).expect("readable").flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let rel = p
                    .strip_prefix(&dir)
                    .expect("under fixtures dir")
                    .to_string_lossy()
                    .replace(std::path::MAIN_SEPARATOR, "/");
                let src = std::fs::read_to_string(&p).expect("readable");
                for f in xtask::taint::taint_source(&rel, &src, &cfg) {
                    rules.push(f.rule);
                }
            }
        }
    }
    for expected in ["T-BRANCH", "T-LOOP", "T-INDEX", "T-COMM", "D-PAR"] {
        assert!(
            rules.contains(&expected),
            "no fixture exercises {expected}; got {rules:?}"
        );
    }
}

#[test]
fn workspace_taint_matches_checked_in_baseline() {
    let root = workspace_root();
    let cfg = xtask::taint::TaintConfig::default();
    let findings = xtask::taint_workspace(&root, &cfg).expect("workspace readable");
    let baseline_text = std::fs::read_to_string(root.join("taint.allow")).unwrap_or_default();
    let baseline = xtask::parse_baseline(&baseline_text);
    let diff = xtask::diff_baseline(findings, &baseline);
    assert!(
        diff.new.is_empty(),
        "new taint findings (fix or justify):\n{}",
        diff.new
            .iter()
            .map(|f| format!("{} {}:{}: {}", f.rule, f.path, f.line, f.snippet))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        diff.stale.is_empty(),
        "stale taint.allow entries (prune):\n{}",
        diff.stale.join("\n")
    );
}
